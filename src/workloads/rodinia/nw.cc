#include "workloads/rodinia/nw.hh"

#include <algorithm>

#include "gpusim/devicemem.hh"
#include "support/rng.hh"

namespace rodinia {
namespace workloads {

namespace {

const core::WorkloadInfo kInfo = {
    "nw",
    "Needleman-Wunsch",
    core::Suite::Rodinia,
    "Dynamic Programming",
    "Bioinformatics",
    "256x256 data points",
    "Global DNA sequence alignment via wavefront dynamic programming",
    "2048x2048 sequences (Table I)",
};

constexpr int kBlock = 16;

struct NwData
{
    std::vector<int8_t> seqA;
    std::vector<int8_t> seqB;
    std::vector<int> ref;   //!< (n+1)^2 substitution scores
    std::vector<int> score; //!< (n+1)^2 DP matrix
};

void
makeInput(const NeedlemanWunsch::Params &p, NwData &d)
{
    Rng rng(0xA11C43);
    int n = p.n;
    d.seqA.resize(n + 1);
    d.seqB.resize(n + 1);
    for (int i = 1; i <= n; ++i) {
        d.seqA[i] = int8_t(rng.below(4));
        d.seqB[i] = int8_t(rng.below(4));
    }

    // BLOSUM-like substitution scores.
    int sim[4][4];
    for (int a = 0; a < 4; ++a)
        for (int b = 0; b < 4; ++b)
            sim[a][b] = a == b ? 5 : -3;

    int w = n + 1;
    d.ref.assign(size_t(w) * w, 0);
    for (int i = 1; i <= n; ++i)
        for (int j = 1; j <= n; ++j)
            d.ref[size_t(i) * w + j] = sim[d.seqA[i]][d.seqB[j]];

    d.score.assign(size_t(w) * w, 0);
    for (int i = 1; i <= n; ++i)
        d.score[size_t(i) * w] = -i * p.penalty;
    for (int j = 1; j <= n; ++j)
        d.score[j] = -j * p.penalty;
}

uint64_t
digestOf(const NwData &d, int n)
{
    int w = n + 1;
    uint64_t h = core::hashRange(d.score.begin() + size_t(n) * w,
                                 d.score.end());
    return core::hashCombine(h, uint64_t(d.score[size_t(n) * w + n]));
}

} // namespace

NeedlemanWunsch::Params
NeedlemanWunsch::params(core::Scale scale)
{
    switch (scale) {
      case core::Scale::Tiny:
        return {64, 10};
      case core::Scale::Small:
        return {128, 10};
      case core::Scale::Paper:
        return {2048, 10};
      case core::Scale::Full:
      default:
        return {256, 10};
    }
}

const core::WorkloadInfo &
NeedlemanWunsch::info() const
{
    return kInfo;
}

void
NeedlemanWunsch::runCpu(trace::TraceSession &session, core::Scale scale)
{
    const Params p = params(scale);
    NwData d;
    makeInput(p, d);
    const int n = p.n;
    const int w = n + 1;
    const int nt = session.numThreads();

    session.run([&](trace::ThreadCtx &ctx) {
        // Hot-code size of the application this
        // workload models (Fig. 11 substitution).
        ctx.codeRegion(8 * 1024);
        const int t = ctx.tid();
        // Anti-diagonal wavefront: cells (i, j) with i + j == diag.
        for (int diag = 2; diag <= 2 * n; ++diag) {
            int ilo = std::max(1, diag - n);
            int ihi = std::min(n, diag - 1);
            int cells = ihi - ilo + 1;
            int lo = ilo + cells * t / nt;
            int hi = ilo + cells * (t + 1) / nt;
            for (int i = lo; i < hi; ++i) {
                int j = diag - i;
                size_t idx = size_t(i) * w + j;
                int nw = ctx.ld(&d.score[idx - w - 1]);
                int up = ctx.ld(&d.score[idx - w]);
                int left = ctx.ld(&d.score[idx - 1]);
                int r = ctx.ld(&d.ref[idx]);
                ctx.alu(4);
                ctx.branch(2);
                int v = std::max(nw + r,
                                 std::max(up - p.penalty,
                                          left - p.penalty));
                ctx.st(&d.score[idx], v);
            }
            ctx.barrier();
        }
    });

    score = d.score[size_t(n) * w + n];
    digest = digestOf(d, n);
}

gpusim::LaunchSequence
NeedlemanWunsch::runGpu(core::Scale scale, int version)
{
    const Params p = params(scale);
    NwData d;
    makeInput(p, d);
    const int n = p.n;
    const int w = n + 1;
    const int tiles = n / kBlock;
    const int penalty = p.penalty;

    gpusim::DeviceSpace dev;
    dev.add(d.score);
    dev.add(d.ref);

    gpusim::LaunchSequence seq;

    // Tiles along each tile-anti-diagonal are independent.
    for (int td = 0; td < 2 * tiles - 1; ++td) {
        std::vector<std::pair<int, int>> tileList;
        int trLo = std::max(0, td - tiles + 1);
        int trHi = std::min(td, tiles - 1);
        for (int tr = trLo; tr <= trHi; ++tr)
            tileList.emplace_back(tr, td - tr);

        gpusim::LaunchConfig launch;
        launch.gridDim = int(tileList.size());
        launch.blockDim = kBlock;

        auto kernel = [&, tileList, version](gpusim::KernelCtx &ctx) {
            auto [tr, tc] = tileList[ctx.blockIdx()];
            const int i0 = tr * kBlock; // tile covers rows i0+1..i0+16
            const int j0 = tc * kBlock;
            const int tx = ctx.tid();

            if (version == 2) {
                // Blocked shared-memory version (Rodinia's kernel).
                auto temp = ctx.shared<int>((kBlock + 1) * (kBlock + 1));
                auto refs = ctx.shared<int>(kBlock * kBlock);

                // Halo: west column, north row, corner.
                temp.put(ctx, size_t(tx + 1) * (kBlock + 1),
                         ctx.ldg(&d.score[size_t(i0 + tx + 1) * w + j0]));
                temp.put(ctx, size_t(tx + 1),
                         ctx.ldg(&d.score[size_t(i0) * w + j0 + tx + 1]));
                if (ctx.branch(tx == 0))
                    temp.put(ctx, 0,
                             ctx.ldg(&d.score[size_t(i0) * w + j0]));
                // Substitution scores for this thread's row.
                for (int j = 0; j < kBlock; ++j)
                    refs.put(ctx, size_t(tx) * kBlock + j,
                             ctx.ldg(&d.ref[size_t(i0 + tx + 1) * w +
                                            j0 + j + 1]));
                ctx.sync();

                for (int m = 0; m < 2 * kBlock - 1; ++m) {
                    gpusim::LoopIter li(ctx, m);
                    if (ctx.branch(m - tx >= 0 && m - tx < kBlock)) {
                        int j = m - tx;
                        size_t row = size_t(tx + 1) * (kBlock + 1);
                        int nwv =
                            temp.get(ctx, row - (kBlock + 1) + j);
                        int upv =
                            temp.get(ctx, row - (kBlock + 1) + j + 1);
                        int lfv = temp.get(ctx, row + j);
                        int rv = refs.get(ctx, size_t(tx) * kBlock + j);
                        ctx.alu(4);
                        int v = std::max(
                            nwv + rv,
                            std::max(upv - penalty, lfv - penalty));
                        temp.put(ctx, row + j + 1, v);
                    }
                    ctx.sync();
                }

                // Write the tile back, 16 bytes at a time.
                for (int j = 0; j < kBlock; j += 4) {
                    size_t idx = size_t(i0 + tx + 1) * w + j0 + j + 1;
                    for (int u = 0; u < 4; ++u)
                        d.score[idx + u] = temp.get(
                            ctx, size_t(tx + 1) * (kBlock + 1) + j + u +
                                     1);
                    ctx.record(gpusim::GOp::Store, gpusim::Space::Global,
                               uint64_t(uintptr_t(&d.score[idx])), 16,
                               std::source_location::current());
                }
            } else {
                // v1: cells computed straight from global memory.
                for (int m = 0; m < 2 * kBlock - 1; ++m) {
                    gpusim::LoopIter li(ctx, m);
                    if (ctx.branch(m - tx >= 0 && m - tx < kBlock)) {
                        int i = i0 + tx + 1;
                        int j = j0 + (m - tx) + 1;
                        size_t idx = size_t(i) * w + j;
                        int nwv = ctx.ldg(&d.score[idx - w - 1]);
                        int upv = ctx.ldg(&d.score[idx - w]);
                        int lfv = ctx.ldg(&d.score[idx - 1]);
                        int rv = ctx.ldg(&d.ref[idx]);
                        ctx.alu(4);
                        int v = std::max(
                            nwv + rv,
                            std::max(upv - penalty, lfv - penalty));
                        ctx.stg(&d.score[idx], v);
                    }
                    ctx.sync();
                }
            }
        };
        seq.add(gpusim::recordKernel(launch, kernel));
    }

    score = d.score[size_t(n) * w + n];
    digest = digestOf(d, n);
    dev.rewrite(seq);
    return seq;
}

void
registerNw()
{
    core::Registry::instance().add(
        kInfo, [] { return std::make_unique<NeedlemanWunsch>(); });
}

} // namespace workloads
} // namespace rodinia
