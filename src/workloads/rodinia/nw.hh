/**
 * @file
 * Needleman-Wunsch global sequence alignment (Rodinia; Dynamic
 * Programming dwarf).
 *
 * Fills the DP score matrix in anti-diagonal wavefronts. The paper
 * highlights NW's limited per-iteration parallelism (diagonal-strip
 * dependences), its heavy shared-memory use in the blocked GPU
 * version, and the resulting low warp occupancy (fewer than 16
 * active threads per block). Two GPU versions are provided: v1
 * computes cells straight from global memory; v2 is the blocked
 * shared-memory implementation shipped with Rodinia.
 */

#ifndef RODINIA_WORKLOADS_RODINIA_NW_HH
#define RODINIA_WORKLOADS_RODINIA_NW_HH

#include <vector>

#include "core/workload.hh"

namespace rodinia {
namespace workloads {

class NeedlemanWunsch : public core::Workload
{
  public:
    struct Params
    {
        int n;       //!< sequence length (matrix is (n+1)^2)
        int penalty; //!< gap penalty
    };

    static Params params(core::Scale scale);

    const core::WorkloadInfo &info() const override;
    void runCpu(trace::TraceSession &session, core::Scale scale) override;
    int gpuVersions() const override { return 2; }
    gpusim::LaunchSequence runGpu(core::Scale scale, int version) override;
    uint64_t checksum() const override { return digest; }

    /** Final alignment score (bottom-right DP cell). */
    int finalScore() const { return score; }

  private:
    uint64_t digest = 0;
    int score = 0;
};

void registerNw();

} // namespace workloads
} // namespace rodinia

#endif // RODINIA_WORKLOADS_RODINIA_NW_HH
