/**
 * @file
 * CFD Euler solver (Rodinia; Unstructured Grid dwarf).
 *
 * Finite-volume solver for the 3-D compressible Euler equations on
 * an unstructured mesh (after Corrigan et al.): per-element flux
 * accumulation over four faces with neighbor gathers, then explicit
 * Runge-Kutta time integration. Neighbor indirection produces the
 * partially uncoalesced, bandwidth-bound access pattern the paper
 * highlights (CFD is among the biggest beneficiaries of additional
 * memory channels).
 */

#ifndef RODINIA_WORKLOADS_RODINIA_CFD_HH
#define RODINIA_WORKLOADS_RODINIA_CFD_HH

#include <vector>

#include "core/workload.hh"

namespace rodinia {
namespace workloads {

class Cfd : public core::Workload
{
  public:
    struct Params
    {
        int elements;
        int rkSteps;
    };

    static Params params(core::Scale scale);

    const core::WorkloadInfo &info() const override;
    void runCpu(trace::TraceSession &session, core::Scale scale) override;
    int gpuVersions() const override { return 1; }
    gpusim::LaunchSequence runGpu(core::Scale scale, int version) override;
    uint64_t checksum() const override { return digest; }

  private:
    uint64_t digest = 0;
};

void registerCfd();

} // namespace workloads
} // namespace rodinia

#endif // RODINIA_WORKLOADS_RODINIA_CFD_HH
