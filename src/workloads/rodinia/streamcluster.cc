#include "workloads/rodinia/streamcluster.hh"

#include "gpusim/devicemem.hh"
#include "support/rng.hh"

namespace rodinia {
namespace workloads {

namespace {

const core::WorkloadInfo kInfo = {
    "streamcluster",
    "StreamCluster",
    core::Suite::Both,
    "Dense Linear Algebra",
    "Data Mining",
    "8192 points, 32 dimensions, 6 candidates",
    "Online k-median clustering: pgain candidate-center evaluation",
    "65536 points (Table I), 64 of 256 dimensions",
};

struct ScData
{
    std::vector<float> points;  //!< n x d
    std::vector<float> weight;  //!< per-point weight
    std::vector<int> assign;    //!< current center index (a point id)
    std::vector<float> cost;    //!< current assignment cost
    std::vector<int> candidates;
};

void
makeData(const StreamCluster::Params &p, ScData &d)
{
    Rng rng(0x5C1);
    d.points.resize(size_t(p.n) * p.d);
    for (auto &v : d.points)
        v = float(rng.uniform(0.0, 1.0));
    d.weight.resize(p.n);
    for (auto &w : d.weight)
        w = float(rng.uniform(0.5, 2.0));
    // Initial assignment: everything assigned to point 0.
    d.assign.assign(p.n, 0);
    d.cost.assign(p.n, 0.0f);
    for (int i = 0; i < p.n; ++i) {
        float dist = 0.0f;
        for (int f = 0; f < p.d; ++f) {
            float diff = d.points[size_t(i) * p.d + f] -
                         d.points[size_t(0) * p.d + f];
            dist += diff * diff;
        }
        d.cost[i] = dist * d.weight[i];
    }
    d.candidates.clear();
    for (int c = 0; c < p.candidates; ++c)
        d.candidates.push_back(int(rng.below(uint64_t(p.n))));
}

} // namespace

StreamCluster::Params
StreamCluster::params(core::Scale scale)
{
    switch (scale) {
      case core::Scale::Tiny:
        return {512, 16, 4};
      case core::Scale::Small:
        return {2048, 32, 4};
      case core::Scale::Paper:
        return {65536, 64, 6};
      case core::Scale::Full:
      default:
        return {8192, 32, 6};
    }
}

const core::WorkloadInfo &
StreamCluster::info() const
{
    return kInfo;
}

void
StreamCluster::runCpu(trace::TraceSession &session, core::Scale scale)
{
    const Params p = params(scale);
    ScData d;
    makeData(p, d);
    const int nt = session.numThreads();
    std::vector<double> partialGain(nt, 0.0);

    session.run([&](trace::ThreadCtx &ctx) {
        // Hot-code size of the application this
        // workload models (Fig. 11 substitution).
        ctx.codeRegion(25 * 1024);
        const int t = ctx.tid();
        const int lo = p.n * t / nt;
        const int hi = p.n * (t + 1) / nt;

        for (int c : d.candidates) {
            partialGain[t] = 0.0;
            for (int i = lo; i < hi; ++i) {
                float dist = 0.0f;
                for (int f = 0; f < p.d; f += 4) {
                    ctx.load(&d.points[size_t(i) * p.d + f], 16);
                    ctx.load(&d.points[size_t(c) * p.d + f], 16);
                    ctx.fp(3);
                    for (int u = 0; u < 4; ++u) {
                        float diff = d.points[size_t(i) * p.d + f + u] -
                                     d.points[size_t(c) * p.d + f + u];
                        dist += diff * diff;
                    }
                }
                float w = ctx.ld(&d.weight[i]);
                float newCost = dist * w;
                float oldCost = ctx.ld(&d.cost[i]);
                ctx.fp(2);
                ctx.branch();
                if (newCost < oldCost) {
                    partialGain[t] += oldCost - newCost;
                    ctx.st(&d.assign[i], c);
                    ctx.st(&d.cost[i], newCost);
                }
            }
            ctx.barrier();
            if (t == 0) {
                double gain = 0.0;
                for (int w = 0; w < nt; ++w) {
                    ctx.load(&partialGain[w], 8);
                    gain += partialGain[w];
                    ctx.fp(1);
                }
                (void)gain;
            }
            ctx.barrier();
        }
    });

    digest = core::hashRange(d.assign.begin(), d.assign.end());
    digest = core::hashCombine(
        digest, core::hashRange(d.cost.begin(), d.cost.end()));
}

gpusim::LaunchSequence
StreamCluster::runGpu(core::Scale scale, int version)
{
    (void)version;
    const Params p = params(scale);
    ScData d;
    makeData(p, d);

    gpusim::LaunchConfig launch;
    launch.blockDim = 64;
    launch.gridDim = (p.n + launch.blockDim - 1) / launch.blockDim;

    gpusim::DeviceSpace dev;
    dev.add(d.points);
    dev.add(d.weight);
    dev.add(d.cost);
    dev.add(d.assign);

    gpusim::LaunchSequence seq;
    for (int c : d.candidates) {
        auto kernel = [&, c](gpusim::KernelCtx &ctx) {
            // Stage the candidate's coordinates in shared memory.
            auto center = ctx.shared<float>(p.d);
            if (ctx.branch(ctx.tid() < p.d))
                center.put(ctx, ctx.tid(),
                           ctx.ldg(&d.points[size_t(c) * p.d +
                                             ctx.tid()]));
            ctx.sync();

            int i = ctx.globalId();
            if (ctx.branch(i >= p.n))
                return;
            float dist = 0.0f;
            for (int f = 0; f < p.d; ++f) {
                float pv = ctx.ldg(&d.points[size_t(i) * p.d + f]);
                float cv = center.get(ctx, f);
                ctx.fp(3);
                float diff = pv - cv;
                dist += diff * diff;
            }
            float w = ctx.ldg(&d.weight[i]);
            float newCost = dist * w;
            float oldCost = ctx.ldg(&d.cost[i]);
            ctx.fp(2);
            if (ctx.branch(newCost < oldCost)) {
                ctx.stg(&d.assign[i], c);
                ctx.stg(&d.cost[i], newCost);
            }
        };
        seq.add(gpusim::recordKernel(launch, kernel));
    }

    digest = core::hashRange(d.assign.begin(), d.assign.end());
    digest = core::hashCombine(
        digest, core::hashRange(d.cost.begin(), d.cost.end()));
    dev.rewrite(seq);
    return seq;
}

void
registerStreamcluster()
{
    core::Registry::instance().add(
        kInfo, [] { return std::make_unique<StreamCluster>(); });
}

} // namespace workloads
} // namespace rodinia
