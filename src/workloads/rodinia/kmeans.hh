/**
 * @file
 * Kmeans clustering (Rodinia; Dense Linear Algebra dwarf).
 *
 * Iterative distance-based clustering: every point is assigned to the
 * nearest of k centers, then centers are recomputed as member means.
 * The GPU implementation follows Rodinia's: one thread per point,
 * with the (read-only) cluster centers bound to texture memory — the
 * paper notes Kmeans and Leukocyte improve through texture binding
 * and are therefore insensitive to memory-channel count (Fig. 4).
 */

#ifndef RODINIA_WORKLOADS_RODINIA_KMEANS_HH
#define RODINIA_WORKLOADS_RODINIA_KMEANS_HH

#include <vector>

#include "core/workload.hh"

namespace rodinia {
namespace workloads {

class Kmeans : public core::Workload
{
  public:
    struct Params
    {
        int n;
        int d;
        int k;
        int iters;
    };

    static Params params(core::Scale scale);

    const core::WorkloadInfo &info() const override;
    void runCpu(trace::TraceSession &session, core::Scale scale) override;
    int gpuVersions() const override { return 1; }
    gpusim::LaunchSequence runGpu(core::Scale scale, int version) override;
    uint64_t checksum() const override { return digest; }

    /** Final cluster memberships from the most recent run. */
    const std::vector<int> &memberships() const { return membership; }

  private:
    std::vector<int> membership;
    uint64_t digest = 0;
};

void registerKmeans();

} // namespace workloads
} // namespace rodinia

#endif // RODINIA_WORKLOADS_RODINIA_KMEANS_HH
