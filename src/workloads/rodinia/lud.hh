/**
 * @file
 * LU Decomposition (Rodinia; Dense Linear Algebra dwarf).
 *
 * Blocked in-place Doolittle factorization A = L*U without pivoting
 * (inputs are made diagonally dominant). Per diagonal step the GPU
 * version runs Rodinia's three kernels — diagonal, perimeter,
 * internal — with the internal kernel doing shared-memory tile
 * multiply-accumulates. The paper notes LUD's row/column
 * dependences limit its shader scalability, and its shared-memory
 * locality makes it insensitive to memory-channel count.
 */

#ifndef RODINIA_WORKLOADS_RODINIA_LUD_HH
#define RODINIA_WORKLOADS_RODINIA_LUD_HH

#include <vector>

#include "core/workload.hh"

namespace rodinia {
namespace workloads {

class Lud : public core::Workload
{
  public:
    struct Params
    {
        int n; //!< matrix dimension (multiple of the 16-wide block)
    };

    static Params params(core::Scale scale);

    const core::WorkloadInfo &info() const override;
    void runCpu(trace::TraceSession &session, core::Scale scale) override;
    int gpuVersions() const override { return 2; }
    gpusim::LaunchSequence runGpu(core::Scale scale, int version) override;
    uint64_t checksum() const override { return digest; }

    /** Deterministic diagonally dominant input matrix. */
    static std::vector<float> makeMatrix(int n);

    /** Factorization result of the most recent run (row-major). */
    const std::vector<float> &result() const { return out; }

  private:
    std::vector<float> out;
    uint64_t digest = 0;
};

void registerLud();

} // namespace workloads
} // namespace rodinia

#endif // RODINIA_WORKLOADS_RODINIA_LUD_HH
