/**
 * @file
 * Heart Wall Tracking (Rodinia; Structured Grid dwarf).
 *
 * Tracks sample points on the inner and outer walls of a mouse heart
 * across ultrasound frames. Exhibits braided parallelism — coarse
 * task parallelism (one thread block per tracked point) combined
 * with fine data parallelism (template matching within the block) —
 * and processes each frame in a single kernel, including some
 * non-parallel per-task computation that slightly under-fills warps,
 * exactly the structure the paper describes. Tracking templates live
 * in constant memory (too many parameters for shared memory).
 */

#ifndef RODINIA_WORKLOADS_RODINIA_HEARTWALL_HH
#define RODINIA_WORKLOADS_RODINIA_HEARTWALL_HH

#include <vector>

#include "core/workload.hh"

namespace rodinia {
namespace workloads {

class HeartWall : public core::Workload
{
  public:
    struct Params
    {
        int rows;
        int cols;
        int frames;
        int points;   //!< tracked sample points (thread blocks)
        int tmplSize; //!< square template edge
        int winSize;  //!< square search-window edge
    };

    static Params params(core::Scale scale);

    const core::WorkloadInfo &info() const override;
    void runCpu(trace::TraceSession &session, core::Scale scale) override;
    int gpuVersions() const override { return 1; }
    gpusim::LaunchSequence runGpu(core::Scale scale, int version) override;
    uint64_t checksum() const override { return digest; }

  private:
    uint64_t digest = 0;
};

void registerHeartwall();

} // namespace workloads
} // namespace rodinia

#endif // RODINIA_WORKLOADS_RODINIA_HEARTWALL_HH
