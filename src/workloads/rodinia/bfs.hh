/**
 * @file
 * Breadth-First Search (Rodinia; Graph Traversal dwarf).
 *
 * Level-synchronous frontier BFS over a synthetic sparse graph. One
 * GPU thread per node tests frontier membership and explores
 * neighbors through uncoalesced global loads; the paper attributes
 * BFS's low IPC to global-memory overhead and its many low-occupancy
 * warps to control flow, and shows it gains the most from extra
 * memory channels and from Fermi's L1 cache.
 */

#ifndef RODINIA_WORKLOADS_RODINIA_BFS_HH
#define RODINIA_WORKLOADS_RODINIA_BFS_HH

#include <vector>

#include "core/workload.hh"

namespace rodinia {
namespace workloads {

/** Synthetic sparse graph in CSR form. */
struct BfsGraph
{
    std::vector<int> rowStart; //!< n + 1 offsets
    std::vector<int> adj;      //!< edge targets
    int numNodes = 0;

    /** Deterministic random graph with the given average degree. */
    static BfsGraph random(int nodes, int avg_degree, uint64_t seed);
};

class Bfs : public core::Workload
{
  public:
    struct Params
    {
        int nodes;
        int avgDegree;
    };

    static Params params(core::Scale scale);

    const core::WorkloadInfo &info() const override;
    void runCpu(trace::TraceSession &session, core::Scale scale) override;
    int gpuVersions() const override { return 1; }
    gpusim::LaunchSequence runGpu(core::Scale scale, int version) override;
    uint64_t checksum() const override { return digest; }

    /** Reference sequential BFS distances, for validation. */
    static std::vector<int> reference(const BfsGraph &g, int source);

  private:
    uint64_t digest = 0;
};

void registerBfs();

} // namespace workloads
} // namespace rodinia

#endif // RODINIA_WORKLOADS_RODINIA_BFS_HH
