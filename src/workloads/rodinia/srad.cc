#include "workloads/rodinia/srad.hh"

#include <cmath>

#include "gpusim/devicemem.hh"
#include "support/rng.hh"

namespace rodinia {
namespace workloads {

namespace {

const core::WorkloadInfo kInfo = {
    "srad",
    "SRAD",
    core::Suite::Rodinia,
    "Structured Grid",
    "Image Processing",
    "256x256 data points",
    "Speckle-reducing anisotropic diffusion on ultrasound imagery",
    "502x458 image (Table I)",
};

constexpr int kBlock = 16;

void
makeImage(const Srad::Params &p, std::vector<float> &img)
{
    Rng rng(0x55AD);
    img.resize(size_t(p.rows) * p.cols);
    for (auto &v : img)
        v = float(std::exp(rng.uniform(0.0, 1.0)));
}

/** Mean/variance statistic q0^2 over the whole image (host side). */
float
computeQ0sq(const std::vector<float> &img)
{
    double sum = 0.0, sum2 = 0.0;
    for (float v : img) {
        sum += v;
        sum2 += double(v) * v;
    }
    double mean = sum / double(img.size());
    double var = sum2 / double(img.size()) - mean * mean;
    return float(var / (mean * mean));
}

/** Diffusion coefficient for one pixel (uninstrumented math). */
inline float
coeffAt(float jc, float dn, float ds, float dw, float de, float q0sq)
{
    float g2 = (dn * dn + ds * ds + dw * dw + de * de) / (jc * jc);
    float l = (dn + ds + dw + de) / jc;
    float num = 0.5f * g2 - (1.0f / 16.0f) * l * l;
    float den = 1.0f + 0.25f * l;
    float qsq = num / (den * den);
    float c = 1.0f / (1.0f + (qsq - q0sq) / (q0sq * (1.0f + q0sq)));
    return c < 0.0f ? 0.0f : (c > 1.0f ? 1.0f : c);
}

} // namespace

Srad::Params
Srad::params(core::Scale scale)
{
    switch (scale) {
      case core::Scale::Tiny:
        return {64, 64, 1, 0.5f};
      case core::Scale::Small:
        return {128, 128, 2, 0.5f};
      case core::Scale::Paper:
        return {502, 458, 2, 0.5f};
      case core::Scale::Full:
      default:
        return {256, 256, 2, 0.5f};
    }
}

const core::WorkloadInfo &
Srad::info() const
{
    return kInfo;
}

std::vector<float>
Srad::reference(const Params &p)
{
    std::vector<float> img;
    makeImage(p, img);
    const int rows = p.rows, cols = p.cols;
    std::vector<float> dn(img.size()), ds(img.size()), dw(img.size()),
        de(img.size()), cc(img.size());
    for (int it = 0; it < p.iters; ++it) {
        float q0sq = computeQ0sq(img);
        for (int r = 0; r < rows; ++r) {
            for (int c = 0; c < cols; ++c) {
                size_t i = size_t(r) * cols + c;
                float jc = img[i];
                dn[i] = (r > 0 ? img[i - cols] : jc) - jc;
                ds[i] = (r < rows - 1 ? img[i + cols] : jc) - jc;
                dw[i] = (c > 0 ? img[i - 1] : jc) - jc;
                de[i] = (c < cols - 1 ? img[i + 1] : jc) - jc;
                cc[i] = coeffAt(jc, dn[i], ds[i], dw[i], de[i], q0sq);
            }
        }
        for (int r = 0; r < rows; ++r) {
            for (int c = 0; c < cols; ++c) {
                size_t i = size_t(r) * cols + c;
                float cs = r < rows - 1 ? cc[i + cols] : cc[i];
                float ce = c < cols - 1 ? cc[i + 1] : cc[i];
                float d = cc[i] * dn[i] + cs * ds[i] + cc[i] * dw[i] +
                          ce * de[i];
                img[i] += 0.25f * p.lambda * d;
            }
        }
    }
    return img;
}

void
Srad::runCpu(trace::TraceSession &session, core::Scale scale)
{
    const Params p = params(scale);
    std::vector<float> img;
    makeImage(p, img);
    const int rows = p.rows, cols = p.cols;
    std::vector<float> dn(img.size()), ds(img.size()), dw(img.size()),
        de(img.size()), cc(img.size());
    const int nt = session.numThreads();
    float q0sq = 0.0f;

    session.run([&](trace::ThreadCtx &ctx) {
        // Hot-code size of the application this
        // workload models (Fig. 11 substitution).
        ctx.codeRegion(12 * 1024);
        const int t = ctx.tid();
        const int rlo = rows * t / nt;
        const int rhi = rows * (t + 1) / nt;
        for (int it = 0; it < p.iters; ++it) {
            if (t == 0) {
                // Image statistics (the host step in the CUDA port).
                for (size_t i = 0; i < img.size(); i += 4) {
                    ctx.load(&img[i], 16);
                    ctx.fp(4);
                }
                q0sq = computeQ0sq(img);
            }
            ctx.barrier();

            for (int r = rlo; r < rhi; ++r) {
                for (int c = 0; c < cols; ++c) {
                    size_t i = size_t(r) * cols + c;
                    float jc = ctx.ld(&img[i]);
                    ctx.load(&img[r > 0 ? i - cols : i], 4);
                    ctx.load(&img[r < rows - 1 ? i + cols : i], 4);
                    ctx.load(&img[c > 0 ? i - 1 : i], 4);
                    ctx.load(&img[c < cols - 1 ? i + 1 : i], 4);
                    dn[i] = (r > 0 ? img[i - cols] : jc) - jc;
                    ds[i] = (r < rows - 1 ? img[i + cols] : jc) - jc;
                    dw[i] = (c > 0 ? img[i - 1] : jc) - jc;
                    de[i] = (c < cols - 1 ? img[i + 1] : jc) - jc;
                    ctx.fp(36);
                    cc[i] = coeffAt(jc, dn[i], ds[i], dw[i], de[i],
                                    q0sq);
                    ctx.store(&dn[i], 4);
                    ctx.store(&ds[i], 4);
                    ctx.store(&dw[i], 4);
                    ctx.store(&de[i], 4);
                    ctx.store(&cc[i], 4);
                }
            }
            ctx.barrier();

            for (int r = rlo; r < rhi; ++r) {
                for (int c = 0; c < cols; ++c) {
                    size_t i = size_t(r) * cols + c;
                    ctx.load(&cc[i], 4);
                    ctx.load(&cc[r < rows - 1 ? i + cols : i], 4);
                    ctx.load(&cc[c < cols - 1 ? i + 1 : i], 4);
                    ctx.load(&dn[i], 16);
                    float cs = r < rows - 1 ? cc[i + cols] : cc[i];
                    float ce = c < cols - 1 ? cc[i + 1] : cc[i];
                    ctx.fp(18);
                    float d = cc[i] * dn[i] + cs * ds[i] +
                              cc[i] * dw[i] + ce * de[i];
                    img[i] += 0.25f * p.lambda * d;
                    ctx.store(&img[i], 4);
                }
            }
            ctx.barrier();
        }
    });

    digest = core::hashRange(img.begin(), img.end());
}

gpusim::LaunchSequence
Srad::runGpu(core::Scale scale, int version)
{
    const Params p = params(scale);
    std::vector<float> img;
    makeImage(p, img);
    const int rows = p.rows, cols = p.cols;
    std::vector<float> dn(img.size()), ds(img.size()), dw(img.size()),
        de(img.size()), cc(img.size());

    const int tilesX = cols / kBlock;
    const int tilesY = rows / kBlock;
    gpusim::LaunchConfig launch;
    launch.gridDim = tilesX * tilesY;
    launch.blockDim = kBlock * kBlock;

    gpusim::DeviceSpace dev;
    dev.add(img);
    dev.add(dn);
    dev.add(ds);
    dev.add(dw);
    dev.add(de);
    dev.add(cc);

    gpusim::LaunchSequence seq;
    for (int it = 0; it < p.iters; ++it) {
        const float q0sq = computeQ0sq(img);

        // Kernel 1: derivatives and diffusion coefficient.
        auto srad1 = [&, q0sq](gpusim::KernelCtx &ctx) {
            const int tile = ctx.blockIdx();
            const int r0 = (tile / tilesX) * kBlock;
            const int c0 = (tile % tilesX) * kBlock;
            const int lr = ctx.tid() / kBlock;
            const int lc = ctx.tid() % kBlock;
            const int r = r0 + lr, c = c0 + lc;
            size_t i = size_t(r) * cols + c;

            float jc, n, s, w, e;
            if (version == 2) {
                // Tile the image through shared memory with halo.
                const int dim = kBlock + 2;
                auto tile_s = ctx.shared<float>(size_t(dim) * dim);
                tile_s.put(ctx, size_t(lr + 1) * dim + lc + 1,
                           ctx.ldg(&img[i]));
                if (ctx.branch(lr == 0))
                    tile_s.put(ctx, size_t(0) * dim + lc + 1,
                               r > 0 ? ctx.ldg(&img[i - cols]) : img[i]);
                if (ctx.branch(lr == kBlock - 1))
                    tile_s.put(ctx, size_t(dim - 1) * dim + lc + 1,
                               r < rows - 1 ? ctx.ldg(&img[i + cols])
                                            : img[i]);
                if (ctx.branch(lc == 0))
                    tile_s.put(ctx, size_t(lr + 1) * dim,
                               c > 0 ? ctx.ldg(&img[i - 1]) : img[i]);
                if (ctx.branch(lc == kBlock - 1))
                    tile_s.put(ctx, size_t(lr + 1) * dim + dim - 1,
                               c < cols - 1 ? ctx.ldg(&img[i + 1])
                                            : img[i]);
                ctx.sync();
                jc = tile_s.get(ctx, size_t(lr + 1) * dim + lc + 1);
                n = tile_s.get(ctx, size_t(lr) * dim + lc + 1);
                s = tile_s.get(ctx, size_t(lr + 2) * dim + lc + 1);
                w = tile_s.get(ctx, size_t(lr + 1) * dim + lc);
                e = tile_s.get(ctx, size_t(lr + 1) * dim + lc + 2);
            } else {
                jc = ctx.ldg(&img[i]);
                n = r > 0 ? ctx.ldg(&img[i - cols]) : jc;
                s = r < rows - 1 ? ctx.ldg(&img[i + cols]) : jc;
                w = c > 0 ? ctx.ldg(&img[i - 1]) : jc;
                e = c < cols - 1 ? ctx.ldg(&img[i + 1]) : jc;
            }
            if (r == 0)
                n = jc;
            if (r == rows - 1)
                s = jc;
            if (c == 0)
                w = jc;
            if (c == cols - 1)
                e = jc;
            ctx.fp(36);
            float vdn = n - jc, vds = s - jc, vdw = w - jc, vde = e - jc;
            float vc = coeffAt(jc, vdn, vds, vdw, vde, q0sq);
            dn[i] = vdn;
            ds[i] = vds;
            dw[i] = vdw;
            de[i] = vde;
            ctx.stg(&dn[i], vdn);
            ctx.stg(&ds[i], vds);
            ctx.stg(&dw[i], vdw);
            ctx.stg(&de[i], vde);
            ctx.stg(&cc[i], vc);
        };
        seq.add(gpusim::recordKernel(launch, srad1));

        // Kernel 2: divergence update.
        auto srad2 = [&](gpusim::KernelCtx &ctx) {
            const int tile = ctx.blockIdx();
            const int r0 = (tile / tilesX) * kBlock;
            const int c0 = (tile % tilesX) * kBlock;
            const int lr = ctx.tid() / kBlock;
            const int lc = ctx.tid() % kBlock;
            const int r = r0 + lr, c = c0 + lc;
            size_t i = size_t(r) * cols + c;

            float cn, cs, ce;
            if (version == 2) {
                const int dim = kBlock + 1;
                auto ctile = ctx.shared<float>(size_t(dim) * dim);
                ctile.put(ctx, size_t(lr) * dim + lc, ctx.ldg(&cc[i]));
                if (ctx.branch(lr == kBlock - 1))
                    ctile.put(ctx, size_t(kBlock) * dim + lc,
                              r < rows - 1 ? ctx.ldg(&cc[i + cols])
                                           : cc[i]);
                if (ctx.branch(lc == kBlock - 1))
                    ctile.put(ctx, size_t(lr) * dim + kBlock,
                              c < cols - 1 ? ctx.ldg(&cc[i + 1])
                                           : cc[i]);
                ctx.sync();
                cn = ctile.get(ctx, size_t(lr) * dim + lc);
                cs = ctile.get(ctx, size_t(lr + 1) * dim + lc);
                ce = ctile.get(ctx, size_t(lr) * dim + lc + 1);
            } else {
                cn = ctx.ldg(&cc[i]);
                cs = r < rows - 1 ? ctx.ldg(&cc[i + cols]) : cn;
                ce = c < cols - 1 ? ctx.ldg(&cc[i + 1]) : cn;
            }
            float vdn = ctx.ldg(&dn[i]);
            float vds = ctx.ldg(&ds[i]);
            float vdw = ctx.ldg(&dw[i]);
            float vde = ctx.ldg(&de[i]);
            ctx.fp(18);
            float d = cn * vdn + cs * vds + cn * vdw + ce * vde;
            float v = img[i] + 0.25f * p.lambda * d;
            img[i] = v;
            ctx.stg(&img[i], v);
        };
        seq.add(gpusim::recordKernel(launch, srad2));
    }

    digest = core::hashRange(img.begin(), img.end());
    dev.rewrite(seq);
    return seq;
}

void
registerSrad()
{
    core::Registry::instance().add(
        kInfo, [] { return std::make_unique<Srad>(); });
}

} // namespace workloads
} // namespace rodinia
