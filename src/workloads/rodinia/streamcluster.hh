/**
 * @file
 * StreamCluster online clustering (shared by Rodinia and Parsec;
 * Dense Linear Algebra dwarf).
 *
 * The pgain kernel of the streaming k-median heuristic: for each
 * candidate center, every point evaluates whether switching to the
 * candidate lowers its assignment cost; per-candidate gains decide
 * whether to open the center. Candidate coordinates live in shared
 * memory on the GPU. The paper includes StreamCluster in both suites
 * ("streamcluster(R, P)" in Fig. 6).
 */

#ifndef RODINIA_WORKLOADS_RODINIA_STREAMCLUSTER_HH
#define RODINIA_WORKLOADS_RODINIA_STREAMCLUSTER_HH

#include <vector>

#include "core/workload.hh"

namespace rodinia {
namespace workloads {

class StreamCluster : public core::Workload
{
  public:
    struct Params
    {
        int n;          //!< points per block
        int d;          //!< dimensions
        int candidates; //!< candidate centers evaluated
    };

    static Params params(core::Scale scale);

    const core::WorkloadInfo &info() const override;
    void runCpu(trace::TraceSession &session, core::Scale scale) override;
    int gpuVersions() const override { return 1; }
    gpusim::LaunchSequence runGpu(core::Scale scale, int version) override;
    uint64_t checksum() const override { return digest; }

  private:
    uint64_t digest = 0;
};

void registerStreamcluster();

} // namespace workloads
} // namespace rodinia

#endif // RODINIA_WORKLOADS_RODINIA_STREAMCLUSTER_HH
