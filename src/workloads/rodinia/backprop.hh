/**
 * @file
 * Back Propagation neural-network training (Rodinia; Unstructured
 * Grid dwarf).
 *
 * One forward + one backward pass of a two-layer perceptron. The GPU
 * forward kernel performs a shared-memory tree reduction over 16x16
 * input tiles; the paper singles this reduction out as the source of
 * Back Propagation's partially filled warps (8, 4, 2, 1 active
 * threads over successive reduction steps).
 */

#ifndef RODINIA_WORKLOADS_RODINIA_BACKPROP_HH
#define RODINIA_WORKLOADS_RODINIA_BACKPROP_HH

#include <vector>

#include "core/workload.hh"

namespace rodinia {
namespace workloads {

class BackProp : public core::Workload
{
  public:
    struct Params
    {
        int inputs;  //!< input-layer width
        int hidden;  //!< hidden-layer width
        float eta;   //!< learning rate
    };

    static Params params(core::Scale scale);

    const core::WorkloadInfo &info() const override;
    void runCpu(trace::TraceSession &session, core::Scale scale) override;
    int gpuVersions() const override { return 1; }
    gpusim::LaunchSequence runGpu(core::Scale scale, int version) override;
    uint64_t checksum() const override { return digest; }

  private:
    uint64_t digest = 0;
};

void registerBackprop();

} // namespace workloads
} // namespace rodinia

#endif // RODINIA_WORKLOADS_RODINIA_BACKPROP_HH
