#include "workloads/rodinia/lud.hh"

#include "gpusim/devicemem.hh"
#include "support/rng.hh"

namespace rodinia {
namespace workloads {

namespace {

const core::WorkloadInfo kInfo = {
    "lud",
    "LU Decomposition",
    core::Suite::Rodinia,
    "Dense Linear Algebra",
    "Linear Algebra",
    "128x128 data points",
    "Blocked in-place LU factorization without pivoting",
    "256x256 matrix (Table I)",
};

constexpr int kB = 16; //!< tile width

} // namespace

std::vector<float>
Lud::makeMatrix(int n)
{
    Rng rng(0x10D);
    std::vector<float> a(size_t(n) * n);
    for (auto &v : a)
        v = float(rng.uniform(-1.0, 1.0));
    // Diagonal dominance keeps the factorization stable unpivoted.
    for (int i = 0; i < n; ++i)
        a[size_t(i) * n + i] = float(n) + float(rng.uniform(0.0, 1.0));
    return a;
}

Lud::Params
Lud::params(core::Scale scale)
{
    switch (scale) {
      case core::Scale::Tiny:
        return {32};
      case core::Scale::Small:
        return {64};
      case core::Scale::Paper:
        return {256};
      case core::Scale::Full:
      default:
        return {128};
    }
}

const core::WorkloadInfo &
Lud::info() const
{
    return kInfo;
}

void
Lud::runCpu(trace::TraceSession &session, core::Scale scale)
{
    const Params p = params(scale);
    const int n = p.n;
    out = makeMatrix(n);
    std::vector<float> &a = out;
    const int nt = session.numThreads();

    session.run([&](trace::ThreadCtx &ctx) {
        // Hot-code size of the application this
        // workload models (Fig. 11 substitution).
        ctx.codeRegion(10 * 1024);
        const int t = ctx.tid();
        for (int k = 0; k < n - 1; ++k) {
            int rows = n - 1 - k;
            int lo = k + 1 + rows * t / nt;
            int hi = k + 1 + rows * (t + 1) / nt;
            float pivot = ctx.ld(&a[size_t(k) * n + k]);
            for (int i = lo; i < hi; ++i) {
                float l = ctx.ld(&a[size_t(i) * n + k]) / pivot;
                ctx.fp(1);
                ctx.st(&a[size_t(i) * n + k], l);
                for (int j = k + 1; j < n; j += 4) {
                    ctx.load(&a[size_t(k) * n + j], 16);
                    ctx.load(&a[size_t(i) * n + j], 16);
                    ctx.fp(2);
                    for (int u = 0; u < 4 && j + u < n; ++u)
                        a[size_t(i) * n + j + u] -=
                            l * a[size_t(k) * n + j + u];
                    ctx.store(&a[size_t(i) * n + j], 16);
                }
            }
            ctx.barrier();
        }
    });

    digest = core::hashRange(a.begin(), a.end());
}

gpusim::LaunchSequence
Lud::runGpu(core::Scale scale, int version)
{
    const Params p = params(scale);
    const int n = p.n;
    out = makeMatrix(n);
    std::vector<float> &a = out;
    gpusim::DeviceSpace dev;
    dev.add(a);
    gpusim::LaunchSequence seq;

    if (version == 1) {
        // v1: unblocked, straight from global memory; one launch per
        // elimination step (thread per row).
        for (int k = 0; k < n - 1; ++k) {
            gpusim::LaunchConfig launch;
            launch.blockDim = 64;
            int rows = n - 1 - k;
            launch.gridDim = (rows + launch.blockDim - 1) /
                             launch.blockDim;
            auto kernel = [&, k](gpusim::KernelCtx &ctx) {
                int i = k + 1 + ctx.globalId();
                if (ctx.branch(i >= n))
                    return;
                float pivot = ctx.ldg(&a[size_t(k) * n + k]);
                float l = ctx.ldg(&a[size_t(i) * n + k]) / pivot;
                ctx.fp(1);
                ctx.stg(&a[size_t(i) * n + k], l);
                for (int j = k + 1; j < n; ++j) {
                    float u = ctx.ldg(&a[size_t(k) * n + j]);
                    float v = ctx.ldg(&a[size_t(i) * n + j]);
                    ctx.fp(2);
                    ctx.stg(&a[size_t(i) * n + j], v - l * u);
                }
            };
            seq.add(gpusim::recordKernel(launch, kernel));
        }
        digest = core::hashRange(a.begin(), a.end());
        dev.rewrite(seq);
        return seq;
    }

    // v2: Rodinia's blocked three-kernel structure.
    const int tiles = n / kB;
    for (int kb = 0; kb < tiles; ++kb) {
        const int base = kb * kB;

        // Diagonal kernel: factorize the pivot tile in place.
        {
            gpusim::LaunchConfig launch;
            launch.gridDim = 1;
            launch.blockDim = kB;
            auto diag = [&, base](gpusim::KernelCtx &ctx) {
                int tx = ctx.tid();
                auto sh = ctx.shared<float>(size_t(kB) * kB);
                for (int j = 0; j < kB; ++j)
                    sh.put(ctx, size_t(tx) * kB + j,
                           ctx.ldg(&a[size_t(base + tx) * n + base + j]));
                ctx.sync();
                for (int k = 0; k < kB - 1; ++k) {
                    gpusim::LoopIter li(ctx, k);
                    if (ctx.branch(tx > k)) {
                        float l = sh.get(ctx, size_t(tx) * kB + k) /
                                  sh.get(ctx, size_t(k) * kB + k);
                        ctx.fp(1);
                        sh.put(ctx, size_t(tx) * kB + k, l);
                        for (int j = k + 1; j < kB; ++j) {
                            float u = sh.get(ctx, size_t(k) * kB + j);
                            float v = sh.get(ctx, size_t(tx) * kB + j);
                            ctx.fp(2);
                            sh.put(ctx, size_t(tx) * kB + j, v - l * u);
                        }
                    }
                    ctx.sync();
                }
                for (int j = 0; j < kB; ++j) {
                    float v = sh.get(ctx, size_t(tx) * kB + j);
                    a[size_t(base + tx) * n + base + j] = v;
                    ctx.stg(&a[size_t(base + tx) * n + base + j], v);
                }
            };
            seq.add(gpusim::recordKernel(launch, diag));
        }

        if (kb == tiles - 1)
            break;

        // Perimeter kernel: row tiles (L-solve) and column tiles
        // (U-solve with divide).
        {
            int rem = tiles - kb - 1;
            gpusim::LaunchConfig launch;
            launch.gridDim = 2 * rem;
            launch.blockDim = kB;
            auto perim = [&, base, rem](gpusim::KernelCtx &ctx) {
                int b = ctx.blockIdx();
                bool isRow = b < rem;
                int other = base + kB * ((isRow ? b : b - rem) + 1);
                int tx = ctx.tid();

                auto dia = ctx.shared<float>(size_t(kB) * kB);
                auto tile = ctx.shared<float>(size_t(kB) * kB);
                for (int j = 0; j < kB; ++j)
                    dia.put(ctx, size_t(tx) * kB + j,
                            ctx.ldg(&a[size_t(base + tx) * n + base + j]));
                if (ctx.branch(isRow)) {
                    for (int j = 0; j < kB; ++j)
                        tile.put(ctx, size_t(tx) * kB + j,
                                 ctx.ldg(&a[size_t(base + tx) * n +
                                            other + j]));
                } else {
                    for (int j = 0; j < kB; ++j)
                        tile.put(ctx, size_t(tx) * kB + j,
                                 ctx.ldg(&a[size_t(other + tx) * n +
                                            base + j]));
                }
                ctx.sync();

                if (ctx.branch(isRow)) {
                    // Thread tx owns column tx: forward substitution
                    // with unit-diagonal L.
                    for (int k = 0; k < kB - 1; ++k) {
                        gpusim::LoopIter li(ctx, k);
                        float akc = tile.get(ctx, size_t(k) * kB + tx);
                        for (int i = k + 1; i < kB; ++i) {
                            float l = dia.get(ctx, size_t(i) * kB + k);
                            float v = tile.get(ctx, size_t(i) * kB + tx);
                            ctx.fp(2);
                            tile.put(ctx, size_t(i) * kB + tx,
                                     v - l * akc);
                        }
                    }
                } else {
                    // Thread tx owns row tx: solve x * U = tile row.
                    for (int k = 0; k < kB; ++k) {
                        gpusim::LoopIter li(ctx, k);
                        float v = tile.get(ctx, size_t(tx) * kB + k) /
                                  dia.get(ctx, size_t(k) * kB + k);
                        ctx.fp(1);
                        tile.put(ctx, size_t(tx) * kB + k, v);
                        for (int j = k + 1; j < kB; ++j) {
                            float u = dia.get(ctx, size_t(k) * kB + j);
                            float w = tile.get(ctx, size_t(tx) * kB + j);
                            ctx.fp(2);
                            tile.put(ctx, size_t(tx) * kB + j,
                                     w - v * u);
                        }
                    }
                }
                ctx.sync();

                if (ctx.branch(isRow)) {
                    for (int j = 0; j < kB; ++j) {
                        float v = tile.get(ctx, size_t(tx) * kB + j);
                        a[size_t(base + tx) * n + other + j] = v;
                        ctx.stg(&a[size_t(base + tx) * n + other + j],
                                v);
                    }
                } else {
                    for (int j = 0; j < kB; ++j) {
                        float v = tile.get(ctx, size_t(tx) * kB + j);
                        a[size_t(other + tx) * n + base + j] = v;
                        ctx.stg(&a[size_t(other + tx) * n + base + j],
                                v);
                    }
                }
            };
            seq.add(gpusim::recordKernel(launch, perim));
        }

        // Internal kernel: trailing-submatrix tile update.
        {
            int rem = tiles - kb - 1;
            gpusim::LaunchConfig launch;
            launch.gridDim = rem * rem;
            launch.blockDim = kB * kB;
            auto internal = [&, base, rem](gpusim::KernelCtx &ctx) {
                int b = ctx.blockIdx();
                int row0 = base + kB * (b / rem + 1);
                int col0 = base + kB * (b % rem + 1);
                int ty = ctx.tid() / kB;
                int tx = ctx.tid() % kB;

                auto lsh = ctx.shared<float>(size_t(kB) * kB);
                auto ush = ctx.shared<float>(size_t(kB) * kB);
                lsh.put(ctx, size_t(ty) * kB + tx,
                        ctx.ldg(&a[size_t(row0 + ty) * n + base + tx]));
                ush.put(ctx, size_t(ty) * kB + tx,
                        ctx.ldg(&a[size_t(base + ty) * n + col0 + tx]));
                ctx.sync();

                float acc = 0.0f;
                for (int k = 0; k < kB; ++k) {
                    acc += lsh.get(ctx, size_t(ty) * kB + k) *
                           ush.get(ctx, size_t(k) * kB + tx);
                    ctx.fp(2);
                }
                float v = ctx.ldg(&a[size_t(row0 + ty) * n + col0 + tx]);
                ctx.fp(1);
                a[size_t(row0 + ty) * n + col0 + tx] = v - acc;
                ctx.stg(&a[size_t(row0 + ty) * n + col0 + tx], v - acc);
            };
            seq.add(gpusim::recordKernel(launch, internal));
        }
    }

    digest = core::hashRange(a.begin(), a.end());
    dev.rewrite(seq);
    return seq;
}

void
registerLud()
{
    core::Registry::instance().add(kInfo,
                                   [] { return std::make_unique<Lud>(); });
}

} // namespace workloads
} // namespace rodinia
