#include "workloads/rodinia/backprop.hh"

#include <cmath>

#include "gpusim/devicemem.hh"
#include "support/rng.hh"

namespace rodinia {
namespace workloads {

namespace {

const core::WorkloadInfo kInfo = {
    "backprop",
    "Back Propagation",
    core::Suite::Rodinia,
    "Unstructured Grid",
    "Pattern Recognition",
    "4096 input nodes",
    "One training pass of a two-layer perceptron",
    "65536 input nodes (Table I)",
};

constexpr int kTile = 16;

inline float
sigmoid(float x)
{
    return 1.0f / (1.0f + std::exp(-x));
}

struct Net
{
    std::vector<float> x;   //!< input activations
    std::vector<float> w1;  //!< inputs x hidden
    std::vector<float> w2;  //!< hidden
    std::vector<float> hid; //!< hidden activations
    float target = 0.8f;
};

void
makeNet(const BackProp::Params &p, Net &net)
{
    Rng rng(0xBAC4);
    net.x.resize(p.inputs);
    net.w1.resize(size_t(p.inputs) * p.hidden);
    net.w2.resize(p.hidden);
    net.hid.assign(p.hidden, 0.0f);
    for (auto &v : net.x)
        v = float(rng.uniform(0.0, 1.0));
    for (auto &v : net.w1)
        v = float(rng.uniform(-0.5, 0.5));
    for (auto &v : net.w2)
        v = float(rng.uniform(-0.5, 0.5));
}

} // namespace

BackProp::Params
BackProp::params(core::Scale scale)
{
    switch (scale) {
      case core::Scale::Tiny:
        return {256, 16, 0.3f};
      case core::Scale::Small:
        return {1024, 16, 0.3f};
      case core::Scale::Paper:
        return {65536, 16, 0.3f};
      case core::Scale::Full:
      default:
        return {4096, 16, 0.3f};
    }
}

const core::WorkloadInfo &
BackProp::info() const
{
    return kInfo;
}

void
BackProp::runCpu(trace::TraceSession &session, core::Scale scale)
{
    const Params p = params(scale);
    Net net;
    makeNet(p, net);
    const int nt = session.numThreads();
    std::vector<std::vector<float>> partial(
        nt, std::vector<float>(p.hidden, 0.0f));
    float out = 0.0f;
    float deltaOut = 0.0f;
    std::vector<float> deltaHid(p.hidden, 0.0f);

    session.run([&](trace::ThreadCtx &ctx) {
        // Hot-code size of the application this
        // workload models (Fig. 11 substitution).
        ctx.codeRegion(10 * 1024);
        const int t = ctx.tid();
        const int lo = p.inputs * t / nt;
        const int hi = p.inputs * (t + 1) / nt;

        // Forward: partial weighted sums into the hidden layer.
        auto &sums = partial[t];
        for (int i = lo; i < hi; ++i) {
            float xi = ctx.ld(&net.x[i]);
            for (int h = 0; h < p.hidden; h += 4) {
                ctx.load(&net.w1[size_t(i) * p.hidden + h], 16);
                ctx.store(&sums[h], 16);
                ctx.fp(2);
                for (int u = 0; u < 4; ++u)
                    sums[h + u] += xi * net.w1[size_t(i) * p.hidden + h +
                                               u];
            }
        }
        ctx.barrier();

        if (t == 0) {
            // Reduce partials, apply the activation, finish forward.
            for (int h = 0; h < p.hidden; ++h) {
                float s = 0.0f;
                for (int w = 0; w < nt; ++w) {
                    ctx.load(&partial[w][h], 4);
                    ctx.fp(1);
                    s += partial[w][h];
                }
                net.hid[h] = sigmoid(s);
                ctx.fp(4);
                ctx.store(&net.hid[h], 4);
            }
            float o = 0.0f;
            for (int h = 0; h < p.hidden; ++h) {
                ctx.load(&net.hid[h], 4);
                ctx.load(&net.w2[h], 4);
                ctx.fp(2);
                o += net.hid[h] * net.w2[h];
            }
            out = sigmoid(o);
            deltaOut = (net.target - out) * out * (1.0f - out);
            ctx.fp(8);
            for (int h = 0; h < p.hidden; ++h) {
                deltaHid[h] = net.hid[h] * (1.0f - net.hid[h]) *
                              net.w2[h] * deltaOut;
                ctx.fp(4);
                net.w2[h] += p.eta * deltaOut * net.hid[h];
                ctx.store(&net.w2[h], 4);
            }
        }
        ctx.barrier();

        // Backward: update the input-to-hidden weights.
        for (int i = lo; i < hi; ++i) {
            float xi = ctx.ld(&net.x[i]);
            for (int h = 0; h < p.hidden; h += 4) {
                ctx.load(&net.w1[size_t(i) * p.hidden + h], 16);
                ctx.load(&deltaHid[h], 16);
                ctx.fp(3);
                for (int u = 0; u < 4; ++u)
                    net.w1[size_t(i) * p.hidden + h + u] +=
                        p.eta * deltaHid[h + u] * xi;
                ctx.store(&net.w1[size_t(i) * p.hidden + h], 16);
            }
        }
    });

    digest = core::hashRange(net.w1.begin(), net.w1.end());
    digest = core::hashCombine(digest, uint64_t(out * 1e6f));
}

gpusim::LaunchSequence
BackProp::runGpu(core::Scale scale, int version)
{
    (void)version;
    const Params p = params(scale);
    Net net;
    makeNet(p, net);

    const int numTiles = p.inputs / kTile;
    std::vector<float> partialOut(size_t(numTiles) * p.hidden, 0.0f);

    gpusim::LaunchConfig launch;
    launch.gridDim = numTiles;
    launch.blockDim = kTile * kTile;

    gpusim::DeviceSpace dev;
    dev.add(net.x);
    dev.add(net.w1);
    dev.add(partialOut);

    gpusim::LaunchSequence seq;

    // Forward kernel: per-tile multiply plus shared tree reduction.
    auto forward = [&](gpusim::KernelCtx &ctx) {
        const int tile = ctx.blockIdx();
        const int ty = ctx.tid() / kTile; // input index within tile
        const int tx = ctx.tid() % kTile; // hidden unit
        const int i = tile * kTile + ty;

        auto inputNode = ctx.shared<float>(kTile);
        auto weight = ctx.shared<float>(size_t(kTile) * kTile);

        if (ctx.branch(tx == 0))
            inputNode.put(ctx, ty, ctx.ldg(&net.x[i]));
        ctx.sync();

        float w = ctx.ldg(&net.w1[size_t(i) * p.hidden + tx]);
        ctx.fp(1);
        weight.put(ctx, size_t(ty) * kTile + tx,
                   w * inputNode.get(ctx, ty));
        ctx.sync();

        // Tree reduction along ty: active lanes halve per step
        // (8, 4, 2, 1), the paper's warp-underutilization pattern.
        for (int step = 1; step <= 4; ++step) {
            gpusim::LoopIter li(ctx, step);
            int stride = 1 << step;
            if (ctx.branch(ty % stride == 0)) {
                float a = weight.get(ctx, size_t(ty) * kTile + tx);
                float b = weight.get(
                    ctx, size_t(ty + stride / 2) * kTile + tx);
                ctx.fp(1);
                weight.put(ctx, size_t(ty) * kTile + tx, a + b);
            }
            ctx.sync();
        }

        if (ctx.branch(ty == 0))
            ctx.stg(&partialOut[size_t(tile) * p.hidden + tx],
                    weight.get(ctx, tx));
    };
    seq.add(gpusim::recordKernel(launch, forward));

    // Host: finish the forward pass and compute the deltas.
    float out = 0.0f;
    std::vector<float> deltaHid(p.hidden, 0.0f);
    {
        for (int h = 0; h < p.hidden; ++h) {
            float s = 0.0f;
            for (int tile = 0; tile < numTiles; ++tile)
                s += partialOut[size_t(tile) * p.hidden + h];
            net.hid[h] = sigmoid(s);
        }
        float o = 0.0f;
        for (int h = 0; h < p.hidden; ++h)
            o += net.hid[h] * net.w2[h];
        out = sigmoid(o);
        float deltaOut = (net.target - out) * out * (1.0f - out);
        for (int h = 0; h < p.hidden; ++h) {
            deltaHid[h] = net.hid[h] * (1.0f - net.hid[h]) * net.w2[h] *
                          deltaOut;
            net.w2[h] += p.eta * deltaOut * net.hid[h];
        }
    }

    dev.add(deltaHid);

    // Backward kernel: coalesced weight updates.
    auto adjust = [&](gpusim::KernelCtx &ctx) {
        const int tile = ctx.blockIdx();
        const int ty = ctx.tid() / kTile;
        const int tx = ctx.tid() % kTile;
        const int i = tile * kTile + ty;

        float xi = ctx.ldg(&net.x[i]);
        float dh = ctx.ldc(&deltaHid[tx]);
        float w = ctx.ldg(&net.w1[size_t(i) * p.hidden + tx]);
        ctx.fp(3);
        ctx.stg(&net.w1[size_t(i) * p.hidden + tx],
                w + p.eta * dh * xi);
    };
    seq.add(gpusim::recordKernel(launch, adjust));

    digest = core::hashRange(net.w1.begin(), net.w1.end());
    digest = core::hashCombine(digest, uint64_t(out * 1e6f));
    dev.rewrite(seq);
    return seq;
}

void
registerBackprop()
{
    core::Registry::instance().add(
        kInfo, [] { return std::make_unique<BackProp>(); });
}

} // namespace workloads
} // namespace rodinia
