#include "workloads/rodinia/cfd.hh"

#include <cmath>

#include "gpusim/devicemem.hh"
#include "support/rng.hh"

namespace rodinia {
namespace workloads {

namespace {

const core::WorkloadInfo kInfo = {
    "cfd",
    "CFD Solver",
    core::Suite::Rodinia,
    "Unstructured Grid",
    "Fluid Dynamics",
    "16384 elements",
    "Unstructured-grid finite-volume Euler solver (Corrigan et al.)",
    "97046-element mesh, 2 RK steps (Table I 97K)",
};

constexpr int kFaces = 4;
constexpr float kGamma = 1.4f;

/** SoA mesh and state: 5 conserved variables per element. */
struct Mesh
{
    int nel = 0;
    std::vector<int> neighbor;      //!< nel x 4 (-1 = far-field)
    std::vector<float> normal;      //!< nel x 4 x 3 face normals
    std::vector<float> area;        //!< per-element volume proxy
    std::vector<float> density;
    std::vector<float> momx, momy, momz;
    std::vector<float> energy;
};

void
makeMesh(const Cfd::Params &p, Mesh &m)
{
    Rng rng(0xCFD);
    m.nel = p.elements;
    int w = 1;
    while (w * w < m.nel)
        ++w;

    m.neighbor.resize(size_t(m.nel) * kFaces);
    m.normal.resize(size_t(m.nel) * kFaces * 3);
    m.area.resize(m.nel);
    for (int i = 0; i < m.nel; ++i) {
        int cand[kFaces] = {i - 1, i + 1, i - w, i + w};
        for (int f = 0; f < kFaces; ++f) {
            int nb = cand[f];
            // Jitter some faces to break the regular structure, as a
            // reordered unstructured mesh would.
            if (rng.chance(0.15))
                nb = int(rng.below(uint64_t(m.nel)));
            m.neighbor[size_t(i) * kFaces + f] =
                (nb >= 0 && nb < m.nel) ? nb : -1;
            for (int d = 0; d < 3; ++d)
                m.normal[(size_t(i) * kFaces + f) * 3 + d] =
                    float(rng.uniform(-1.0, 1.0));
        }
        m.area[i] = float(rng.uniform(0.8, 1.2));
    }

    m.density.resize(m.nel);
    m.momx.resize(m.nel);
    m.momy.resize(m.nel);
    m.momz.resize(m.nel);
    m.energy.resize(m.nel);
    for (int i = 0; i < m.nel; ++i) {
        m.density[i] = float(rng.uniform(0.9, 1.1));
        m.momx[i] = float(rng.uniform(-0.1, 0.1));
        m.momy[i] = float(rng.uniform(-0.1, 0.1));
        m.momz[i] = float(rng.uniform(-0.1, 0.1));
        m.energy[i] = float(rng.uniform(2.4, 2.6));
    }
}

/** Pressure from the conserved variables. */
inline float
pressure(float rho, float mx, float my, float mz, float e)
{
    float ke = 0.5f * (mx * mx + my * my + mz * mz) / rho;
    return (kGamma - 1.0f) * (e - ke);
}

} // namespace

Cfd::Params
Cfd::params(core::Scale scale)
{
    switch (scale) {
      case core::Scale::Tiny:
        return {1024, 1};
      case core::Scale::Small:
        return {4096, 2};
      case core::Scale::Paper:
        return {97046, 2};
      case core::Scale::Full:
      default:
        return {16384, 2};
    }
}

const core::WorkloadInfo &
Cfd::info() const
{
    return kInfo;
}

void
Cfd::runCpu(trace::TraceSession &session, core::Scale scale)
{
    const Params p = params(scale);
    Mesh m;
    makeMesh(p, m);
    std::vector<float> flux(size_t(m.nel) * 5, 0.0f);
    const int nt = session.numThreads();

    session.run([&](trace::ThreadCtx &ctx) {
        // Hot-code size of the application this
        // workload models (Fig. 11 substitution).
        ctx.codeRegion(25 * 1024);
        const int t = ctx.tid();
        const int lo = m.nel * t / nt;
        const int hi = m.nel * (t + 1) / nt;

        for (int rk = 0; rk < p.rkSteps; ++rk) {
            // Flux accumulation over faces.
            for (int i = lo; i < hi; ++i) {
                ctx.load(&m.density[i], 4);
                ctx.load(&m.momx[i], 4);
                ctx.load(&m.energy[i], 4);
                float rho = m.density[i], mx = m.momx[i],
                      my = m.momy[i], mz = m.momz[i], e = m.energy[i];
                float pi = pressure(rho, mx, my, mz, e);
                ctx.fp(8);
                float acc[5] = {0, 0, 0, 0, 0};
                for (int f = 0; f < kFaces; ++f) {
                    int nb = ctx.ld(&m.neighbor[size_t(i) * kFaces + f]);
                    ctx.load(&m.normal[(size_t(i) * kFaces + f) * 3],
                             12);
                    const float *nv =
                        &m.normal[(size_t(i) * kFaces + f) * 3];
                    float nrho, nmx, nmy, nmz, ne;
                    ctx.branch();
                    if (nb >= 0) {
                        ctx.load(&m.density[nb], 4);
                        ctx.load(&m.momx[nb], 4);
                        ctx.load(&m.momy[nb], 4);
                        ctx.load(&m.momz[nb], 4);
                        ctx.load(&m.energy[nb], 4);
                        nrho = m.density[nb];
                        nmx = m.momx[nb];
                        nmy = m.momy[nb];
                        nmz = m.momz[nb];
                        ne = m.energy[nb];
                    } else {
                        // Far-field boundary state.
                        nrho = 1.0f;
                        nmx = nmy = nmz = 0.0f;
                        ne = 2.5f;
                    }
                    float pn = pressure(nrho, nmx, nmy, nmz, ne);
                    float avgp = 0.5f * (pi + pn);
                    ctx.fp(56);
                    for (int d = 0; d < 3; ++d) {
                        float nd = nv[d];
                        acc[0] += 0.5f * nd * (mx + nmx);
                        acc[1] += nd * (avgp + 0.25f * (mx + nmx) *
                                                   (mx + nmx) /
                                                   (rho + nrho));
                        acc[2] += nd * 0.25f * (my + nmy);
                        acc[3] += nd * 0.25f * (mz + nmz);
                        acc[4] += 0.5f * nd * (e + ne + avgp);
                    }
                }
                ctx.store(&flux[size_t(i) * 5], 20);
                for (int v = 0; v < 5; ++v)
                    flux[size_t(i) * 5 + v] = acc[v];
            }
            ctx.barrier();

            // Explicit time integration.
            for (int i = lo; i < hi; ++i) {
                float dt = 0.001f / ctx.ld(&m.area[i]);
                ctx.load(&flux[size_t(i) * 5], 20);
                ctx.fp(10);
                m.density[i] -= dt * flux[size_t(i) * 5 + 0];
                m.momx[i] -= dt * flux[size_t(i) * 5 + 1];
                m.momy[i] -= dt * flux[size_t(i) * 5 + 2];
                m.momz[i] -= dt * flux[size_t(i) * 5 + 3];
                m.energy[i] -= dt * flux[size_t(i) * 5 + 4];
                ctx.store(&m.density[i], 4);
                ctx.store(&m.momx[i], 4);
                ctx.store(&m.energy[i], 4);
            }
            ctx.barrier();
        }
    });

    digest = core::hashRange(m.density.begin(), m.density.end());
    digest = core::hashCombine(
        digest, core::hashRange(m.energy.begin(), m.energy.end()));
}

gpusim::LaunchSequence
Cfd::runGpu(core::Scale scale, int version)
{
    (void)version;
    const Params p = params(scale);
    Mesh m;
    makeMesh(p, m);
    std::vector<float> flux(size_t(m.nel) * 5, 0.0f);

    gpusim::LaunchConfig launch;
    launch.blockDim = 128;
    launch.gridDim = (m.nel + launch.blockDim - 1) / launch.blockDim;

    gpusim::DeviceSpace dev;
    dev.add(m.density);
    dev.add(m.momx);
    dev.add(m.momy);
    dev.add(m.momz);
    dev.add(m.energy);
    dev.add(m.neighbor);
    dev.add(m.normal);
    dev.add(m.area);
    dev.add(flux);

    gpusim::LaunchSequence seq;
    for (int rk = 0; rk < p.rkSteps; ++rk) {
        // compute_flux kernel.
        auto fluxKernel = [&](gpusim::KernelCtx &ctx) {
            int i = ctx.globalId();
            if (ctx.branch(i >= m.nel))
                return;
            float rho = ctx.ldg(&m.density[i]);
            float mx = ctx.ldg(&m.momx[i]);
            float my = ctx.ldg(&m.momy[i]);
            float mz = ctx.ldg(&m.momz[i]);
            float e = ctx.ldg(&m.energy[i]);
            float pi = pressure(rho, mx, my, mz, e);
            ctx.fp(8);
            float acc[5] = {0, 0, 0, 0, 0};
            for (int f = 0; f < kFaces; ++f) {
                int nb = ctx.ldg(&m.neighbor[size_t(i) * kFaces + f]);
                ctx.record(gpusim::GOp::Load, gpusim::Space::Global,
                           uint64_t(uintptr_t(
                               &m.normal[(size_t(i) * kFaces + f) * 3])),
                           12, std::source_location::current());
                const float *nv = &m.normal[(size_t(i) * kFaces + f) * 3];
                float nrho, nmx, nmy, nmz, ne;
                if (ctx.branch(nb >= 0)) {
                    nrho = ctx.ldg(&m.density[nb]);
                    nmx = ctx.ldg(&m.momx[nb]);
                    nmy = ctx.ldg(&m.momy[nb]);
                    nmz = ctx.ldg(&m.momz[nb]);
                    ne = ctx.ldg(&m.energy[nb]);
                } else {
                    nrho = 1.0f;
                    nmx = nmy = nmz = 0.0f;
                    ne = 2.5f;
                }
                float pn = pressure(nrho, nmx, nmy, nmz, ne);
                float avgp = 0.5f * (pi + pn);
                ctx.fp(56);
                for (int d = 0; d < 3; ++d) {
                    float nd = nv[d];
                    acc[0] += 0.5f * nd * (mx + nmx);
                    acc[1] += nd * (avgp + 0.25f * (mx + nmx) *
                                               (mx + nmx) /
                                               (rho + nrho));
                    acc[2] += nd * 0.25f * (my + nmy);
                    acc[3] += nd * 0.25f * (mz + nmz);
                    acc[4] += 0.5f * nd * (e + ne + avgp);
                }
            }
            for (int v = 0; v < 5; ++v) {
                flux[size_t(i) * 5 + v] = acc[v];
                ctx.stg(&flux[size_t(i) * 5 + v], acc[v]);
            }
        };
        seq.add(gpusim::recordKernel(launch, fluxKernel));

        // time_step kernel.
        auto stepKernel = [&](gpusim::KernelCtx &ctx) {
            int i = ctx.globalId();
            if (ctx.branch(i >= m.nel))
                return;
            float dt = 0.001f / ctx.ldg(&m.area[i]);
            ctx.fp(10);
            float f0 = ctx.ldg(&flux[size_t(i) * 5 + 0]);
            float f1 = ctx.ldg(&flux[size_t(i) * 5 + 1]);
            float f2 = ctx.ldg(&flux[size_t(i) * 5 + 2]);
            float f3 = ctx.ldg(&flux[size_t(i) * 5 + 3]);
            float f4 = ctx.ldg(&flux[size_t(i) * 5 + 4]);
            ctx.stg(&m.density[i], m.density[i] - dt * f0);
            ctx.stg(&m.momx[i], m.momx[i] - dt * f1);
            ctx.stg(&m.momy[i], m.momy[i] - dt * f2);
            ctx.stg(&m.momz[i], m.momz[i] - dt * f3);
            ctx.stg(&m.energy[i], m.energy[i] - dt * f4);
        };
        seq.add(gpusim::recordKernel(launch, stepKernel));
    }

    digest = core::hashRange(m.density.begin(), m.density.end());
    digest = core::hashCombine(
        digest, core::hashRange(m.energy.begin(), m.energy.end()));
    dev.rewrite(seq);
    return seq;
}

void
registerCfd()
{
    core::Registry::instance().add(kInfo,
                                   [] { return std::make_unique<Cfd>(); });
}

} // namespace workloads
} // namespace rodinia
