/**
 * @file
 * HotSpot thermal simulation (Rodinia; Structured Grid dwarf).
 *
 * Iterative 5-point stencil solving the heat equation on a chip
 * floorplan: each step updates every cell from its neighbors, its
 * own temperature, and the local power dissipation. The GPU version
 * tiles the grid into shared memory with a one-cell halo; the paper
 * reports HotSpot among the highest-IPC, most shared-memory-bound
 * Rodinia kernels with little benefit from extra memory channels.
 */

#ifndef RODINIA_WORKLOADS_RODINIA_HOTSPOT_HH
#define RODINIA_WORKLOADS_RODINIA_HOTSPOT_HH

#include <vector>

#include "core/workload.hh"

namespace rodinia {
namespace workloads {

class HotSpot : public core::Workload
{
  public:
    struct Params
    {
        int rows;
        int cols;
        int iters;
    };

    static Params params(core::Scale scale);

    const core::WorkloadInfo &info() const override;
    void runCpu(trace::TraceSession &session, core::Scale scale) override;
    int gpuVersions() const override { return 1; }
    gpusim::LaunchSequence runGpu(core::Scale scale, int version) override;
    uint64_t checksum() const override { return digest; }

    /** Reference (uninstrumented) solver, for validation. */
    static std::vector<float> reference(const Params &p);

  private:
    uint64_t digest = 0;
};

void registerHotspot();

} // namespace workloads
} // namespace rodinia

#endif // RODINIA_WORKLOADS_RODINIA_HOTSPOT_HH
