/**
 * @file
 * Explicit registration of every built-in workload.
 *
 * Registration is an explicit call (rather than static initializers)
 * so that static-library dead-stripping and initialization order can
 * never silently drop a benchmark from the suites.
 */

#include <mutex>

#include "core/workload.hh"
#include "workloads/parsec/parsec.hh"
#include "workloads/rodinia/backprop.hh"
#include "workloads/rodinia/bfs.hh"
#include "workloads/rodinia/cfd.hh"
#include "workloads/rodinia/heartwall.hh"
#include "workloads/rodinia/hotspot.hh"
#include "workloads/rodinia/kmeans.hh"
#include "workloads/rodinia/leukocyte.hh"
#include "workloads/rodinia/lud.hh"
#include "workloads/rodinia/mummer.hh"
#include "workloads/rodinia/nw.hh"
#include "workloads/rodinia/srad.hh"
#include "workloads/rodinia/streamcluster.hh"

namespace rodinia {
namespace core {

void
registerAllWorkloads()
{
    // The driver's pool threads may race on the first call, so the
    // idempotence guard must be a real once (a plain static bool
    // would let a second thread observe a half-filled registry).
    static std::once_flag once;
    std::call_once(once, [] {
        using namespace workloads;
        // Rodinia (Table I order).
        registerKmeans();
        registerNw();
        registerHotspot();
        registerBackprop();
        registerSrad();
        registerLeukocyte();
        registerBfs();
        registerStreamcluster(); // shared with Parsec
        registerMummer();
        registerCfd();
        registerLud();
        registerHeartwall();
        // Parsec (Table V order).
        registerBlackscholes();
        registerBodytrack();
        registerCanneal();
        registerDedup();
        registerFacesim();
        registerFerret();
        registerFluidanimate();
        registerFreqmine();
        registerRaytrace();
        registerSwaptions();
        registerVips();
        registerX264();
    });
}

} // namespace core
} // namespace rodinia
