/**
 * @file
 * Parsec-analog workload declarations (Table V).
 *
 * Each class re-implements the algorithmic core of one Parsec
 * application at reduced scale, parallelized the way the original is
 * (data-parallel or software pipeline), so that instruction mix,
 * working-set, and sharing behavior land in the same qualitative
 * regions as the paper's measurements. StreamCluster is shared with
 * the Rodinia suite and lives in workloads/rodinia.
 */

#ifndef RODINIA_WORKLOADS_PARSEC_PARSEC_HH
#define RODINIA_WORKLOADS_PARSEC_PARSEC_HH

#include "core/workload.hh"

namespace rodinia {
namespace workloads {

/** Declares a CPU-only Parsec-analog workload class. */
#define RODINIA_PARSEC_WORKLOAD(ClassName)                                 \
    class ClassName : public core::Workload                                \
    {                                                                      \
      public:                                                              \
        const core::WorkloadInfo &info() const override;                   \
        void runCpu(trace::TraceSession &session,                          \
                    core::Scale scale) override;                           \
        uint64_t checksum() const override { return digest; }              \
                                                                           \
      private:                                                             \
        uint64_t digest = 0;                                               \
    }

/** Black-Scholes option pricing: embarrassingly parallel FP math. */
RODINIA_PARSEC_WORKLOAD(Blackscholes);
/** Particle-filter body tracking over a shared observation image. */
RODINIA_PARSEC_WORKLOAD(Bodytrack);
/** Simulated-annealing netlist placement with random swaps. */
RODINIA_PARSEC_WORKLOAD(Canneal);
/** Pipelined chunking + deduplication + compression. */
RODINIA_PARSEC_WORKLOAD(Dedup);
/** Spring-mass face physics: gather forces, integrate vertices. */
RODINIA_PARSEC_WORKLOAD(Facesim);
/** Pipelined content-based similarity search. */
RODINIA_PARSEC_WORKLOAD(Ferret);
/** Smoothed-particle-hydrodynamics fluid animation. */
RODINIA_PARSEC_WORKLOAD(Fluidanimate);
/** Frequent-itemset mining with an FP-tree. */
RODINIA_PARSEC_WORKLOAD(Freqmine);
/** Whitted-style ray tracing of a sphere scene. */
RODINIA_PARSEC_WORKLOAD(Raytrace);
/** Monte-Carlo swaption pricing (HJM-style paths). */
RODINIA_PARSEC_WORKLOAD(Swaptions);
/** Streaming image-transform pipeline over a large image. */
RODINIA_PARSEC_WORKLOAD(Vips);
/** H.264-style full-search motion estimation. */
RODINIA_PARSEC_WORKLOAD(X264);

#undef RODINIA_PARSEC_WORKLOAD

void registerBlackscholes();
void registerBodytrack();
void registerCanneal();
void registerDedup();
void registerFacesim();
void registerFerret();
void registerFluidanimate();
void registerFreqmine();
void registerRaytrace();
void registerSwaptions();
void registerVips();
void registerX264();

} // namespace workloads
} // namespace rodinia

#endif // RODINIA_WORKLOADS_PARSEC_PARSEC_HH
