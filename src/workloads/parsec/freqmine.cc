#include "workloads/parsec/parsec.hh"

#include <algorithm>

#include "support/rng.hh"

namespace rodinia {
namespace workloads {

namespace {

const core::WorkloadInfo kInfo = {
    "freqmine",
    "Freqmine",
    core::Suite::Parsec,
    "MapReduce",
    "Data Mining",
    "32768 transactions, 512 items",
    "Frequent-itemset mining with an FP-tree prefix structure",
    "131072 transactions, 1024 items",
};

/** FP-tree node: child list threaded through sibling pointers. */
struct FpNode
{
    int item = -1;
    int count = 0;
    int parent = -1;
    int firstChild = -1;
    int nextSibling = -1;
};

} // namespace

const core::WorkloadInfo &
Freqmine::info() const
{
    return kInfo;
}

void
Freqmine::runCpu(trace::TraceSession &session, core::Scale scale)
{
    int txns, items;
    switch (scale) {
      case core::Scale::Tiny:
        txns = 2048;
        items = 128;
        break;
      case core::Scale::Small:
        txns = 8192;
        items = 256;
        break;
      case core::Scale::Paper:
        txns = 131072;
        items = 1024;
        break;
      default:
        txns = 32768;
        items = 512;
        break;
    }
    const int avgLen = 8;

    // Zipf-ish transactions: low item ids are much more frequent.
    Rng rng(0xF4E0);
    std::vector<int> txStart(txns + 1, 0);
    std::vector<int> txItems;
    for (int t = 0; t < txns; ++t) {
        int len = 2 + int(rng.below(uint64_t(2 * avgLen - 3)));
        std::vector<int> tx;
        for (int k = 0; k < len; ++k) {
            double u = rng.uniform();
            int item = int(double(items) * u * u); // skewed
            if (item >= items)
                item = items - 1;
            tx.push_back(item);
        }
        std::sort(tx.begin(), tx.end());
        tx.erase(std::unique(tx.begin(), tx.end()), tx.end());
        for (int it : tx)
            txItems.push_back(it);
        txStart[t + 1] = int(txItems.size());
    }

    const int nt = session.numThreads();
    std::vector<std::vector<int>> localCounts(
        nt, std::vector<int>(items, 0));
    std::vector<int> freq(items, 0);
    // Per-thread FP-trees over the thread's transaction slice (the
    // parallel tree-building phase); roots merged logically by
    // summing per-item path counts. Capacity is reserved here, on
    // the main thread, at the exact worst case (one node per slice
    // item plus the root): the builders' push_back then never
    // allocates, so the traced node addresses come from this one
    // deterministic allocation rather than whichever malloc arena
    // the worker thread happened to be assigned.
    std::vector<std::vector<FpNode>> trees(nt);
    for (int t = 0; t < nt; ++t) {
        const int lo = txns * t / nt;
        const int hi = txns * (t + 1) / nt;
        trees[t].reserve(size_t(txStart[hi] - txStart[lo]) + 1);
    }
    std::vector<uint64_t> localSig(nt, 0);

    session.run([&](trace::ThreadCtx &ctx) {
        // Hot-code size of the application this
        // workload models (Fig. 11 substitution).
        ctx.codeRegion(80 * 1024);
        const int t = ctx.tid();
        const int lo = txns * t / nt;
        const int hi = txns * (t + 1) / nt;

        // Pass 1: item-frequency histogram.
        auto &counts = localCounts[t];
        for (int tx = lo; tx < hi; ++tx) {
            for (int k = txStart[tx]; k < txStart[tx + 1]; ++k) {
                int item = ctx.ld(&txItems[k]);
                ctx.alu(1);
                counts[item]++;
                ctx.store(&counts[item], 4);
            }
        }
        ctx.barrier();
        if (t == 0) {
            for (int i = 0; i < items; ++i) {
                int s = 0;
                for (int w = 0; w < nt; ++w) {
                    ctx.load(&localCounts[w][i], 4);
                    ctx.alu(1);
                    s += localCounts[w][i];
                }
                freq[i] = s;
                ctx.store(&freq[i], 4);
            }
        }
        ctx.barrier();

        // Pass 2: build a local FP-tree of frequency-ordered paths.
        auto &tree = trees[t];
        tree.push_back(FpNode{}); // root
        const int minSupport = txns / 64;
        for (int tx = lo; tx < hi; ++tx) {
            // Keep frequent items, order by descending frequency.
            std::vector<int> path;
            for (int k = txStart[tx]; k < txStart[tx + 1]; ++k) {
                int item = ctx.ld(&txItems[k]);
                ctx.load(&freq[item], 4);
                ctx.branch();
                if (freq[item] >= minSupport)
                    path.push_back(item);
            }
            std::sort(path.begin(), path.end(), [&](int a, int b) {
                return freq[a] != freq[b] ? freq[a] > freq[b] : a < b;
            });
            ctx.alu(uint64_t(path.size()) * 2);

            // Insert the path, chasing child pointers.
            int node = 0;
            for (int item : path) {
                int child = ctx.ld(&tree[node].firstChild);
                int found = -1;
                while (child >= 0) {
                    ctx.load(&tree[child].item, 4);
                    ctx.branch();
                    if (tree[child].item == item) {
                        found = child;
                        break;
                    }
                    child = ctx.ld(&tree[child].nextSibling);
                }
                if (found < 0) {
                    FpNode n;
                    n.item = item;
                    n.parent = node;
                    n.nextSibling = tree[node].firstChild;
                    tree.push_back(n);
                    found = int(tree.size()) - 1;
                    tree[node].firstChild = found;
                    ctx.store(&tree[node].firstChild, 4);
                    ctx.store(&tree[found], sizeof(FpNode));
                }
                tree[found].count++;
                ctx.store(&tree[found].count, 4);
                node = found;
            }
        }
        ctx.barrier();

        // Pass 3: mine frequent 2-itemsets from the local tree by
        // walking each node's parent chain.
        uint64_t sig = 1469598103934665603ULL;
        for (size_t ni = 1; ni < tree.size(); ++ni) {
            ctx.load(&tree[ni], sizeof(FpNode));
            int a = tree[ni].item;
            int up = tree[ni].parent;
            while (up > 0) {
                ctx.load(&tree[up].item, 4);
                ctx.alu(2);
                sig = core::hashCombine(
                    sig, (uint64_t(a) << 20) ^ uint64_t(tree[up].item) ^
                             (uint64_t(tree[ni].count) << 40));
                up = tree[up].parent;
            }
            ctx.branch();
        }
        localSig[t] = sig;
    });

    uint64_t h = core::hashRange(freq.begin(), freq.end());
    for (int t = 0; t < nt; ++t)
        h = core::hashCombine(h, localSig[t]);
    digest = h;
}

void
registerFreqmine()
{
    core::Registry::instance().add(
        kInfo, [] { return std::make_unique<Freqmine>(); });
}

} // namespace workloads
} // namespace rodinia
