#include "workloads/parsec/parsec.hh"

#include <cstdlib>

#include "support/rng.hh"

namespace rodinia {
namespace workloads {

namespace {

const core::WorkloadInfo kInfo = {
    "x264",
    "X264",
    core::Suite::Parsec,
    "Structured Grid",
    "Media Processing",
    "3 frames, 128x224, +/-4 full search",
    "H.264-style full-search motion estimation over macroblocks",
    "320x180 video, 8 frames",
};

constexpr int kMb = 16; //!< macroblock edge

} // namespace

const core::WorkloadInfo &
X264::info() const
{
    return kInfo;
}

void
X264::runCpu(trace::TraceSession &session, core::Scale scale)
{
    int rows, cols, frames, range;
    switch (scale) {
      case core::Scale::Tiny:
        rows = 64;
        cols = 96;
        frames = 2;
        range = 2;
        break;
      case core::Scale::Small:
        rows = 96;
        cols = 160;
        frames = 2;
        range = 4;
        break;
      case core::Scale::Paper:
        rows = 180;
        cols = 320;
        frames = 8;
        range = 4;
        break;
      default:
        rows = 128;
        cols = 224;
        frames = 3;
        range = 4;
        break;
    }

    // Frame sequence with global motion so the search finds matches.
    Rng rng(0x264);
    std::vector<std::vector<uint8_t>> video(frames);
    video[0].resize(size_t(rows) * cols);
    for (auto &v : video[0])
        v = uint8_t(rng.below(256));
    for (int f = 1; f < frames; ++f) {
        video[f].resize(size_t(rows) * cols);
        int mx = (f % 3) - 1, my = ((f + 1) % 3) - 1;
        for (int r = 0; r < rows; ++r) {
            for (int c = 0; c < cols; ++c) {
                int sr = std::min(rows - 1, std::max(0, r + my));
                int sc = std::min(cols - 1, std::max(0, c + mx));
                int noise = int(rng.below(7)) - 3;
                int v = int(video[f - 1][size_t(sr) * cols + sc]) +
                        noise;
                video[f][size_t(r) * cols + c] =
                    uint8_t(std::min(255, std::max(0, v)));
            }
        }
    }

    const int mbRows = rows / kMb, mbCols = cols / kMb;
    const int numMbs = mbRows * mbCols;
    std::vector<int> vectors(size_t(frames) * numMbs * 2, 0);
    const int nt = session.numThreads();

    session.run([&](trace::ThreadCtx &ctx) {
        // Hot-code size of the application this
        // workload models (Fig. 11 substitution).
        ctx.codeRegion(200 * 1024);
        const int t = ctx.tid();
        const int lo = numMbs * t / nt;
        const int hi = numMbs * (t + 1) / nt;

        for (int f = 1; f < frames; ++f) {
            const auto &cur = video[f];
            const auto &ref = video[f - 1];
            for (int mb = lo; mb < hi; ++mb) {
                const int mr = (mb / mbCols) * kMb;
                const int mc = (mb % mbCols) * kMb;
                int bestSad = 1 << 30;
                int bestDr = 0, bestDc = 0;

                for (int dr = -range; dr <= range; ++dr) {
                    for (int dc = -range; dc <= range; ++dc) {
                        int rr = mr + dr, rc = mc + dc;
                        ctx.branch();
                        if (rr < 0 || rc < 0 || rr + kMb > rows ||
                            rc + kMb > cols)
                            continue;
                        int sad = 0;
                        for (int y = 0; y < kMb; ++y) {
                            // 16-byte SAD rows, as SIMD x264 does.
                            ctx.load(&cur[size_t(mr + y) * cols + mc],
                                     16);
                            ctx.load(&ref[size_t(rr + y) * cols + rc],
                                     16);
                            ctx.alu(3);
                            for (int x = 0; x < kMb; ++x)
                                sad += std::abs(
                                    int(cur[size_t(mr + y) * cols +
                                            mc + x]) -
                                    int(ref[size_t(rr + y) * cols +
                                            rc + x]));
                        }
                        ctx.branch();
                        if (sad < bestSad) {
                            bestSad = sad;
                            bestDr = dr;
                            bestDc = dc;
                        }
                    }
                }
                size_t vi = (size_t(f) * numMbs + mb) * 2;
                vectors[vi] = bestDr;
                vectors[vi + 1] = bestDc;
                ctx.store(&vectors[vi], 8);
            }
            ctx.barrier();
        }
    });

    digest = core::hashRange(vectors.begin(), vectors.end());
}

void
registerX264()
{
    core::Registry::instance().add(
        kInfo, [] { return std::make_unique<X264>(); });
}

} // namespace workloads
} // namespace rodinia
