#include "workloads/parsec/parsec.hh"

#include <cmath>

#include "support/rng.hh"

namespace rodinia {
namespace workloads {

namespace {

const core::WorkloadInfo kInfo = {
    "raytrace",
    "Raytrace",
    core::Suite::Parsec,
    "Dense Linear Algebra",
    "Visualization",
    "96x96 image, 32 spheres, shadows",
    "Whitted-style ray tracing of a procedural sphere scene",
    "256x256 image, 64 spheres",
};

struct Sphere
{
    float cx, cy, cz, r;
    float colR, colG, colB;
    float pad = 0.0f;
};

/** Ray-sphere intersection; returns hit distance or a miss. */
inline float
intersect(const Sphere &s, float ox, float oy, float oz, float dx,
          float dy, float dz)
{
    float lx = s.cx - ox, ly = s.cy - oy, lz = s.cz - oz;
    float b = lx * dx + ly * dy + lz * dz;
    float c = lx * lx + ly * ly + lz * lz - s.r * s.r;
    float disc = b * b - c;
    if (disc < 0.0f)
        return -1.0f;
    float t = b - std::sqrt(disc);
    return t > 1e-4f ? t : -1.0f;
}

} // namespace

const core::WorkloadInfo &
Raytrace::info() const
{
    return kInfo;
}

void
Raytrace::runCpu(trace::TraceSession &session, core::Scale scale)
{
    int dim, numSpheres;
    switch (scale) {
      case core::Scale::Tiny:
        dim = 32;
        numSpheres = 16;
        break;
      case core::Scale::Small:
        dim = 64;
        numSpheres = 24;
        break;
      case core::Scale::Paper:
        dim = 256;
        numSpheres = 64;
        break;
      default:
        dim = 96;
        numSpheres = 32;
        break;
    }

    Rng rng(0x4A97);
    std::vector<Sphere> spheres(numSpheres);
    for (auto &s : spheres) {
        s.cx = float(rng.uniform(-6.0, 6.0));
        s.cy = float(rng.uniform(-6.0, 6.0));
        s.cz = float(rng.uniform(6.0, 18.0));
        s.r = float(rng.uniform(0.5, 2.0));
        s.colR = float(rng.uniform(0.0, 1.0));
        s.colG = float(rng.uniform(0.0, 1.0));
        s.colB = float(rng.uniform(0.0, 1.0));
    }
    const float lx = 0.57f, ly = 0.57f, lz = -0.57f; // light dir
    std::vector<float> image(size_t(dim) * dim * 3, 0.0f);
    const int nt = session.numThreads();

    session.run([&](trace::ThreadCtx &ctx) {
        // Hot-code size of the application this
        // workload models (Fig. 11 substitution).
        ctx.codeRegion(120 * 1024);
        const int t = ctx.tid();
        const int rlo = dim * t / nt;
        const int rhi = dim * (t + 1) / nt;

        for (int py = rlo; py < rhi; ++py) {
            for (int px = 0; px < dim; ++px) {
                float dx = (px - dim / 2) / float(dim);
                float dy = (py - dim / 2) / float(dim);
                float dz = 1.0f;
                float inv = 1.0f /
                            std::sqrt(dx * dx + dy * dy + dz * dz);
                dx *= inv;
                dy *= inv;
                dz *= inv;
                ctx.fp(9);

                // Primary ray: closest sphere.
                float bestT = 1e30f;
                int hit = -1;
                for (int s = 0; s < numSpheres; ++s) {
                    ctx.load(&spheres[s], 32);
                    ctx.fp(12);
                    ctx.branch();
                    float tt = intersect(spheres[s], 0, 0, 0, dx, dy,
                                         dz);
                    if (tt > 0.0f && tt < bestT) {
                        bestT = tt;
                        hit = s;
                    }
                }

                float r = 0.05f, g = 0.05f, b = 0.1f;
                ctx.branch();
                if (hit >= 0) {
                    const Sphere &s = spheres[hit];
                    float hx = dx * bestT, hy = dy * bestT,
                          hz = dz * bestT;
                    float nx = (hx - s.cx) / s.r;
                    float ny = (hy - s.cy) / s.r;
                    float nz = (hz - s.cz) / s.r;
                    float diffuse = std::max(
                        0.0f, -(nx * lx + ny * ly + nz * lz));
                    ctx.fp(14);

                    // Shadow ray toward the light.
                    bool shadow = false;
                    for (int s2 = 0; s2 < numSpheres && !shadow;
                         ++s2) {
                        if (s2 == hit)
                            continue;
                        ctx.load(&spheres[s2], 32);
                        ctx.fp(12);
                        ctx.branch();
                        if (intersect(spheres[s2], hx, hy, hz, -lx,
                                      -ly, -lz) > 0.0f)
                            shadow = true;
                    }
                    float k = shadow ? 0.15f : 0.2f + 0.8f * diffuse;
                    r = s.colR * k;
                    g = s.colG * k;
                    b = s.colB * k;
                    ctx.fp(4);
                }
                size_t idx = (size_t(py) * dim + px) * 3;
                image[idx] = r;
                image[idx + 1] = g;
                image[idx + 2] = b;
                ctx.store(&image[idx], 12);
            }
        }
    });

    digest = core::hashRange(image.begin(), image.end());
}

void
registerRaytrace()
{
    core::Registry::instance().add(
        kInfo, [] { return std::make_unique<Raytrace>(); });
}

} // namespace workloads
} // namespace rodinia
