#include "workloads/parsec/parsec.hh"

#include <mutex>

#include "support/rng.hh"

namespace rodinia {
namespace workloads {

namespace {

const core::WorkloadInfo kInfo = {
    "canneal",
    "Canneal",
    core::Suite::Parsec,
    "Unstructured Grid",
    "Engineering",
    "65536 netlist elements, 8192 swaps/thread",
    "Simulated-annealing routing-cost minimization of a netlist",
    "262144 elements, 16384 swaps/thread",
};

} // namespace

const core::WorkloadInfo &
Canneal::info() const
{
    return kInfo;
}

void
Canneal::runCpu(trace::TraceSession &session, core::Scale scale)
{
    int elements, swapsPerThread;
    switch (scale) {
      case core::Scale::Tiny:
        elements = 4096;
        swapsPerThread = 512;
        break;
      case core::Scale::Small:
        elements = 16384;
        swapsPerThread = 2048;
        break;
      case core::Scale::Paper:
        elements = 262144;
        swapsPerThread = 16384;
        break;
      default:
        elements = 65536;
        swapsPerThread = 8192;
        break;
    }
    const int fanout = 4;

    Rng rng(0xCA2);
    // Placement: x/y location per element; netlist: random fanout.
    std::vector<int> locX(elements), locY(elements);
    std::vector<int> nets(size_t(elements) * fanout);
    for (int i = 0; i < elements; ++i) {
        locX[i] = int(rng.below(1024));
        locY[i] = int(rng.below(1024));
        for (int f = 0; f < fanout; ++f)
            nets[size_t(i) * fanout + f] =
                int(rng.below(uint64_t(elements)));
    }
    // Striped locks, as canneal's lock-free swaps would contend.
    constexpr int kLocks = 64;
    std::mutex locks[kLocks];

    auto wireCost = [&](trace::ThreadCtx &ctx, int e) {
        int cost = 0;
        int ex = ctx.ld(&locX[e]);
        int ey = ctx.ld(&locY[e]);
        for (int f = 0; f < fanout; ++f) {
            int o = ctx.ld(&nets[size_t(e) * fanout + f]);
            int ox = ctx.ld(&locX[o]);
            int oy = ctx.ld(&locY[o]);
            ctx.alu(6);
            cost += std::abs(ex - ox) + std::abs(ey - oy);
        }
        return cost;
    };

    session.run([&](trace::ThreadCtx &ctx) {
        // Hot-code size of the application this
        // workload models (Fig. 11 substitution).
        ctx.codeRegion(40 * 1024);
        const int t = ctx.tid();
        Rng local(0xA43E + t);
        double temperature = 100.0;

        for (int s = 0; s < swapsPerThread; ++s) {
            int a = int(local.below(uint64_t(elements)));
            int b = int(local.below(uint64_t(elements)));
            if (a == b)
                continue;
            ctx.alu(4);

            int before = wireCost(ctx, a) + wireCost(ctx, b);
            // Tentatively swap under the striped locks.
            std::scoped_lock lock(locks[a % kLocks],
                                  locks[(b % kLocks) == (a % kLocks)
                                            ? (b % kLocks + 1) % kLocks
                                            : b % kLocks]);
            std::swap(locX[a], locX[b]);
            std::swap(locY[a], locY[b]);
            ctx.store(&locX[a], 4);
            ctx.store(&locX[b], 4);
            ctx.store(&locY[a], 4);
            ctx.store(&locY[b], 4);
            int after = wireCost(ctx, a) + wireCost(ctx, b);

            ctx.branch();
            // Draw the acceptance variate unconditionally: a
            // short-circuited draw would advance the RNG stream only
            // when the (cross-thread, timing-dependent) cost delta is
            // unfavorable, and every later swap's addresses depend on
            // the stream position.
            double u = local.uniform();
            bool accept = after < before ||
                          u < std::exp((before - after) / temperature);
            if (!accept) {
                std::swap(locX[a], locX[b]);
                std::swap(locY[a], locY[b]);
            }
            // Final-placement write-back: the same four stores are
            // recorded whether the swap committed or reverted, so
            // the recorded trace is a pure function of the
            // thread-local RNG stream even though acceptance reads
            // cross-thread placement values whose timing races.
            ctx.store(&locX[a], 4);
            ctx.store(&locX[b], 4);
            ctx.store(&locY[a], 4);
            ctx.store(&locY[b], 4);
            temperature *= 0.9995;
        }
    });

    // Deterministic *structure*, thread-interleaving-dependent values:
    // digest over the final total cost bucketed coarsely.
    long long total = 0;
    for (int i = 0; i < elements; ++i) {
        for (int f = 0; f < fanout; ++f) {
            int o = nets[size_t(i) * fanout + f];
            total += std::abs(locX[i] - locX[o]) +
                     std::abs(locY[i] - locY[o]);
        }
    }
    digest = uint64_t(total / 1000000);
}

void
registerCanneal()
{
    core::Registry::instance().add(
        kInfo, [] { return std::make_unique<Canneal>(); });
}

} // namespace workloads
} // namespace rodinia
