#include "workloads/parsec/parsec.hh"

#include <atomic>
#include <memory>
#include <unordered_map>

#include "support/logging.hh"
#include "support/rng.hh"
#include "workloads/parsec/pipeline.hh"

namespace rodinia {
namespace workloads {

namespace {

const core::WorkloadInfo kInfo = {
    "dedup",
    "Dedup",
    core::Suite::Parsec,
    "Combinational Logic",
    "Enterprise Storage",
    "1 MB stream, 4-stage pipeline",
    "Pipelined content-defined chunking, deduplication, compression",
    "4 MiB stream",
};

struct Chunk
{
    const uint8_t *data;
    int len;
    int id;
};

} // namespace

const core::WorkloadInfo &
Dedup::info() const
{
    return kInfo;
}

void
Dedup::runCpu(trace::TraceSession &session, core::Scale scale)
{
    int bytes;
    switch (scale) {
      case core::Scale::Tiny:
        bytes = 64 * 1024;
        break;
      case core::Scale::Small:
        bytes = 256 * 1024;
        break;
      case core::Scale::Paper:
        bytes = 4 * 1024 * 1024;
        break;
      default:
        bytes = 1024 * 1024;
        break;
    }

    // Synthetic input with heavy redundancy: repeated phrases with
    // occasional mutation, so deduplication actually fires.
    Rng rng(0xDED);
    std::vector<uint8_t> input(bytes);
    std::vector<uint8_t> phrase(509);
    for (auto &c : phrase)
        c = uint8_t(rng.below(256));
    for (int i = 0; i < bytes; ++i) {
        input[i] = phrase[i % phrase.size()];
        if (rng.chance(0.001))
            input[i] = uint8_t(rng.below(256));
    }

    const int nt = session.numThreads();
    if (nt < 3)
        fatal("dedup's pipeline needs at least 3 threads, got ", nt);

    // Deterministic pipeline lanes: the chunker routes each chunk by
    // a content key, lane L's deduplicator feeds lane L's compressor
    // through a single-producer single-consumer queue, so every
    // thread sees an arrival order that is a pure function of the
    // input. Content routing also makes the dedup decision
    // lane-local: equal chunks always land in the same lane, so "who
    // saw this fingerprint first" no longer races across threads.
    const int lanes = (nt - 1) / 2;
    std::vector<std::unique_ptr<BoundedQueue<Chunk>>> chunkQ;
    std::vector<std::unique_ptr<BoundedQueue<Chunk>>> uniqueQ;
    for (int l = 0; l < lanes; ++l) {
        chunkQ.push_back(std::make_unique<BoundedQueue<Chunk>>(128));
        uniqueQ.push_back(std::make_unique<BoundedQueue<Chunk>>(128));
    }
    std::vector<uint64_t> compressedSizes(4096, 0);
    std::atomic<int> uniqueCount{0};
    std::atomic<int> dupCount{0};
    std::atomic<uint64_t> outBytes{0};

    session.run([&](trace::ThreadCtx &ctx) {
        // Hot-code size of the application this
        // workload models (Fig. 11 substitution).
        ctx.codeRegion(90 * 1024);
        const int t = ctx.tid();
        if (t == 0) {
            // Stage 1: content-defined chunking via a rolling hash.
            // The boundary hash doubles as the routing key — it is a
            // content digest of the chunk, so identical chunks route
            // identically.
            uint64_t h = 0;
            int start = 0;
            int id = 0;
            for (int i = 0; i < bytes; ++i) {
                ctx.load(&input[i], 1);
                ctx.alu(3);
                h = h * 131 + input[i];
                bool boundary = (h & 0x3ff) == 0 ||
                                i - start >= 4096 || i == bytes - 1;
                ctx.branch();
                if (boundary) {
                    int lane = int((h >> 10) % uint64_t(lanes));
                    chunkQ[size_t(lane)]->push(
                        {&input[start], i - start + 1, id++});
                    start = i + 1;
                    h = 0;
                }
            }
            for (int l = 0; l < lanes; ++l)
                chunkQ[size_t(l)]->close();
        } else if (t <= lanes) {
            // Stage 2: deduplicate this lane's chunks by fingerprint
            // (lane-local table; routing already partitioned by
            // content).
            const int lane = t - 1;
            std::unordered_map<uint64_t, int> table;
            while (auto c = chunkQ[size_t(lane)]->pop()) {
                uint64_t fp = 1469598103934665603ULL;
                for (int i = 0; i < c->len; ++i) {
                    ctx.load(&c->data[i], 1);
                    ctx.alu(2);
                    fp = (fp ^ c->data[i]) * 1099511628211ULL;
                }
                bool fresh = table.emplace(fp, c->id).second;
                ctx.branch();
                if (fresh) {
                    uniqueCount.fetch_add(1);
                    uniqueQ[size_t(lane)]->push(*c);
                } else {
                    dupCount.fetch_add(1);
                }
            }
            uniqueQ[size_t(lane)]->close();
        } else if (t <= 2 * lanes) {
            // Stage 3: "compress" unique chunks (delta + RLE sizing).
            const int lane = t - 1 - lanes;
            while (auto c = uniqueQ[size_t(lane)]->pop()) {
                int runs = 1;
                for (int i = 1; i < c->len; ++i) {
                    ctx.load(&c->data[i], 1);
                    ctx.alu(1);
                    ctx.branch();
                    if (c->data[i] != c->data[i - 1])
                        ++runs;
                }
                uint64_t sz = uint64_t(runs) * 2;
                outBytes.fetch_add(sz);
                if (c->id < int(compressedSizes.size()))
                    ctx.store(&compressedSizes[c->id], 8);
            }
        }
        // Stage 4: reassembly scan once the pipeline drains (any
        // thread beyond the lane pairs, e.g. t = 7 of 8).
        ctx.barrier();
        if (t == 2 * lanes + 1) {
            for (size_t i = 0; i < compressedSizes.size(); ++i) {
                ctx.load(&compressedSizes[i], 8);
                ctx.alu(1);
            }
        }
    });

    digest = core::hashCombine(uint64_t(uniqueCount.load()),
                               uint64_t(dupCount.load()));
    digest = core::hashCombine(digest, outBytes.load());
}

void
registerDedup()
{
    core::Registry::instance().add(
        kInfo, [] { return std::make_unique<Dedup>(); });
}

} // namespace workloads
} // namespace rodinia
