#include "workloads/parsec/parsec.hh"

#include <atomic>
#include <mutex>
#include <unordered_map>

#include "support/logging.hh"
#include "support/rng.hh"
#include "workloads/parsec/pipeline.hh"

namespace rodinia {
namespace workloads {

namespace {

const core::WorkloadInfo kInfo = {
    "dedup",
    "Dedup",
    core::Suite::Parsec,
    "Combinational Logic",
    "Enterprise Storage",
    "1 MB stream, 4-stage pipeline",
    "Pipelined content-defined chunking, deduplication, compression",
};

struct Chunk
{
    const uint8_t *data;
    int len;
    int id;
};

} // namespace

const core::WorkloadInfo &
Dedup::info() const
{
    return kInfo;
}

void
Dedup::runCpu(trace::TraceSession &session, core::Scale scale)
{
    int bytes;
    switch (scale) {
      case core::Scale::Tiny:
        bytes = 64 * 1024;
        break;
      case core::Scale::Small:
        bytes = 256 * 1024;
        break;
      default:
        bytes = 1024 * 1024;
        break;
    }

    // Synthetic input with heavy redundancy: repeated phrases with
    // occasional mutation, so deduplication actually fires.
    Rng rng(0xDED);
    std::vector<uint8_t> input(bytes);
    std::vector<uint8_t> phrase(509);
    for (auto &c : phrase)
        c = uint8_t(rng.below(256));
    for (int i = 0; i < bytes; ++i) {
        input[i] = phrase[i % phrase.size()];
        if (rng.chance(0.001))
            input[i] = uint8_t(rng.below(256));
    }

    BoundedQueue<Chunk> chunkQ(128);
    BoundedQueue<Chunk> uniqueQ(128);
    std::unordered_map<uint64_t, int> table;
    std::mutex tableMtx;
    std::vector<uint64_t> compressedSizes(4096, 0);
    std::atomic<int> uniqueCount{0};
    std::atomic<int> dupCount{0};
    std::atomic<uint64_t> outBytes{0};
    const int nt = session.numThreads();
    std::atomic<int> dedupersLeft{nt > 1 ? nt / 2 : 1};

    if (nt < 3)
        fatal("dedup's pipeline needs at least 3 threads, got ", nt);

    session.run([&](trace::ThreadCtx &ctx) {
        // Hot-code size of the application this
        // workload models (Fig. 11 substitution).
        ctx.codeRegion(90 * 1024);
        const int t = ctx.tid();
        if (t == 0) {
            // Stage 1: content-defined chunking via a rolling hash.
            uint64_t h = 0;
            int start = 0;
            int id = 0;
            for (int i = 0; i < bytes; ++i) {
                ctx.load(&input[i], 1);
                ctx.alu(3);
                h = h * 131 + input[i];
                bool boundary = (h & 0x3ff) == 0 ||
                                i - start >= 4096 || i == bytes - 1;
                ctx.branch();
                if (boundary) {
                    chunkQ.push({&input[start], i - start + 1, id++});
                    start = i + 1;
                    h = 0;
                }
            }
            chunkQ.close();
        } else if (t <= nt / 2) {
            // Stage 2: deduplicate chunks by fingerprint.
            while (auto c = chunkQ.pop()) {
                uint64_t fp = 1469598103934665603ULL;
                for (int i = 0; i < c->len; ++i) {
                    ctx.load(&c->data[i], 1);
                    ctx.alu(2);
                    fp = (fp ^ c->data[i]) * 1099511628211ULL;
                }
                bool fresh;
                {
                    std::lock_guard<std::mutex> lock(tableMtx);
                    fresh = table.emplace(fp, c->id).second;
                }
                ctx.branch();
                if (fresh) {
                    uniqueCount.fetch_add(1);
                    uniqueQ.push(*c);
                } else {
                    dupCount.fetch_add(1);
                }
            }
            // The last deduplicator to finish closes the next stage.
            if (dedupersLeft.fetch_sub(1) == 1)
                uniqueQ.close();
        } else {
            // Stage 3: "compress" unique chunks (delta + RLE sizing).
            while (auto c = uniqueQ.pop()) {
                int runs = 1;
                for (int i = 1; i < c->len; ++i) {
                    ctx.load(&c->data[i], 1);
                    ctx.alu(1);
                    ctx.branch();
                    if (c->data[i] != c->data[i - 1])
                        ++runs;
                }
                uint64_t sz = uint64_t(runs) * 2;
                outBytes.fetch_add(sz);
                if (c->id < int(compressedSizes.size()))
                    ctx.store(&compressedSizes[c->id], 8);
            }
        }
    });

    digest = core::hashCombine(uint64_t(uniqueCount.load()),
                               uint64_t(dupCount.load()));
    digest = core::hashCombine(digest, outBytes.load());
}

void
registerDedup()
{
    core::Registry::instance().add(
        kInfo, [] { return std::make_unique<Dedup>(); });
}

} // namespace workloads
} // namespace rodinia
