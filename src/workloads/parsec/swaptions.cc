#include "workloads/parsec/parsec.hh"

#include <cmath>

#include "support/rng.hh"

namespace rodinia {
namespace workloads {

namespace {

const core::WorkloadInfo kInfo = {
    "swaptions",
    "Swaptions",
    core::Suite::Parsec,
    "MapReduce",
    "Financial Analysis",
    "16 swaptions, 1024 paths each",
    "Monte-Carlo swaption pricing over simulated HJM rate paths",
    "64 swaptions, 8192 paths (simlarge)",
};

} // namespace

const core::WorkloadInfo &
Swaptions::info() const
{
    return kInfo;
}

void
Swaptions::runCpu(trace::TraceSession &session, core::Scale scale)
{
    int numSwaptions, paths;
    const int steps = 20, tenors = 8;
    switch (scale) {
      case core::Scale::Tiny:
        numSwaptions = 4;
        paths = 128;
        break;
      case core::Scale::Small:
        numSwaptions = 8;
        paths = 512;
        break;
      case core::Scale::Paper:
        numSwaptions = 64;
        paths = 8192;
        break;
      default:
        numSwaptions = 16;
        paths = 1024;
        break;
    }

    Rng rng(0x5A3);
    struct Swaption
    {
        float strike;
        float maturity;
        float vol;
    };
    std::vector<Swaption> swaptions(numSwaptions);
    for (auto &s : swaptions) {
        s.strike = float(rng.uniform(0.02, 0.08));
        s.maturity = float(rng.uniform(1.0, 5.0));
        s.vol = float(rng.uniform(0.05, 0.25));
    }
    std::vector<float> forward(tenors);
    for (auto &f : forward)
        f = float(rng.uniform(0.02, 0.06));
    std::vector<double> prices(numSwaptions, 0.0);
    const int nt = session.numThreads();
    const int work = numSwaptions * paths;

    session.run([&](trace::ThreadCtx &ctx) {
        // Hot-code size of the application this
        // workload models (Fig. 11 substitution).
        ctx.codeRegion(30 * 1024);
        const int t = ctx.tid();
        const int lo = work * t / nt;
        const int hi = work * (t + 1) / nt;
        std::vector<double> local(numSwaptions, 0.0);
        float rates[tenors];

        for (int w = lo; w < hi; ++w) {
            int sw = w / paths;
            int path = w % paths;
            ctx.load(&swaptions[sw], 12);
            Rng prng(uint64_t(sw) * 100003 + path);

            for (int k = 0; k < tenors; ++k) {
                ctx.load(&forward[k], 4);
                rates[k] = forward[k];
            }
            // Evolve the forward curve (HJM-style lognormal shocks).
            float dt = swaptions[sw].maturity / steps;
            for (int s = 0; s < steps; ++s) {
                float z = float(prng.gaussian());
                ctx.fp(4 * tenors + 2);
                for (int k = 0; k < tenors; ++k) {
                    float drift = 0.5f * swaptions[sw].vol *
                                  swaptions[sw].vol * dt;
                    rates[k] *= std::exp(
                        (drift - 0.0f) +
                        swaptions[sw].vol * std::sqrt(dt) * z *
                            (1.0f - 0.05f * k));
                }
            }
            // Payoff: positive part of the par-swap spread.
            float swapRate = 0.0f;
            for (int k = 0; k < tenors; ++k) {
                ctx.fp(1);
                swapRate += rates[k];
            }
            swapRate /= float(tenors);
            float payoff =
                std::max(0.0f, swapRate - swaptions[sw].strike);
            float discount =
                std::exp(-rates[0] * swaptions[sw].maturity);
            ctx.fp(6);
            local[sw] += double(payoff) * discount;
            ctx.branch();
        }

        ctx.barrier();
        // Deterministic reduction: thread 0 would need local arrays;
        // instead each thread adds under an implied order using the
        // barrier ladder (thread k adds at step k).
        for (int turn = 0; turn < ctx.numThreads(); ++turn) {
            if (turn == t) {
                for (int sw = 0; sw < numSwaptions; ++sw) {
                    ctx.load(&prices[sw], 8);
                    ctx.fp(1);
                    prices[sw] += local[sw];
                    ctx.store(&prices[sw], 8);
                }
            }
            ctx.barrier();
        }
    });

    for (auto &p : prices)
        p /= paths;
    digest = core::hashRange(prices.begin(), prices.end());
}

void
registerSwaptions()
{
    core::Registry::instance().add(
        kInfo, [] { return std::make_unique<Swaptions>(); });
}

} // namespace workloads
} // namespace rodinia
