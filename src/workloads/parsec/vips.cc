#include "workloads/parsec/parsec.hh"

#include <cmath>

#include "support/rng.hh"

namespace rodinia {
namespace workloads {

namespace {

const core::WorkloadInfo kInfo = {
    "vips",
    "Vips",
    core::Suite::Parsec,
    "Structured Grid",
    "Media Processing",
    "768x768 image, 3-stage transform pipeline",
    "Streaming image transformations: affine, convolve, levels",
    "2048x2048 image",
};

} // namespace

const core::WorkloadInfo &
Vips::info() const
{
    return kInfo;
}

void
Vips::runCpu(trace::TraceSession &session, core::Scale scale)
{
    int dim;
    switch (scale) {
      case core::Scale::Tiny:
        dim = 192;
        break;
      case core::Scale::Small:
        dim = 384;
        break;
      case core::Scale::Paper:
        dim = 2048;
        break;
      default:
        dim = 768;
        break;
    }

    Rng rng(0x71B5);
    std::vector<float> src(size_t(dim) * dim);
    for (auto &v : src)
        v = float(rng.uniform(0.0, 255.0));
    std::vector<float> affine(src.size(), 0.0f);
    std::vector<float> conv(src.size(), 0.0f);
    std::vector<float> out(src.size(), 0.0f);
    const int nt = session.numThreads();

    session.run([&](trace::ThreadCtx &ctx) {
        // Hot-code size of the application this
        // workload models (Fig. 11 substitution).
        ctx.codeRegion(220 * 1024);
        const int t = ctx.tid();
        const int rlo = dim * t / nt;
        const int rhi = dim * (t + 1) / nt;

        // Stage 1: affine warp (slight rotation + scale) with
        // bilinear sampling — strided, data-dependent reads.
        const float c = 0.998f, s = 0.05f, scale1 = 1.02f;
        for (int y = rlo; y < rhi; ++y) {
            for (int x = 0; x < dim; ++x) {
                float sx = (c * (x - dim / 2) - s * (y - dim / 2)) *
                               scale1 +
                           dim / 2;
                float sy = (s * (x - dim / 2) + c * (y - dim / 2)) *
                               scale1 +
                           dim / 2;
                int ix = int(sx), iy = int(sy);
                ctx.fp(10);
                ctx.alu(4);
                ctx.branch();
                float v = 0.0f;
                if (ix >= 0 && iy >= 0 && ix < dim - 1 &&
                    iy < dim - 1) {
                    float fx = sx - ix, fy = sy - iy;
                    ctx.load(&src[size_t(iy) * dim + ix], 8);
                    ctx.load(&src[size_t(iy + 1) * dim + ix], 8);
                    ctx.fp(8);
                    v = src[size_t(iy) * dim + ix] * (1 - fx) *
                            (1 - fy) +
                        src[size_t(iy) * dim + ix + 1] * fx * (1 - fy) +
                        src[size_t(iy + 1) * dim + ix] * (1 - fx) *
                            fy +
                        src[size_t(iy + 1) * dim + ix + 1] * fx * fy;
                }
                affine[size_t(y) * dim + x] = v;
                ctx.store(&affine[size_t(y) * dim + x], 4);
            }
        }
        ctx.barrier();

        // Stage 2: 3x3 sharpen convolution, streaming rows.
        const float kc = 2.0f, kn = -0.25f;
        for (int y = rlo; y < rhi; ++y) {
            for (int x = 0; x < dim; x += 4) {
                size_t i = size_t(y) * dim + x;
                ctx.load(&affine[i], 16);
                if (y > 0)
                    ctx.load(&affine[i - dim], 16);
                if (y < dim - 1)
                    ctx.load(&affine[i + dim], 16);
                ctx.fp(20);
                for (int u = 0; u < 4 && x + u < dim; ++u) {
                    int xx = x + u;
                    float acc = kc * affine[size_t(y) * dim + xx];
                    if (y > 0)
                        acc += kn * affine[size_t(y - 1) * dim + xx];
                    if (y < dim - 1)
                        acc += kn * affine[size_t(y + 1) * dim + xx];
                    if (xx > 0)
                        acc += kn * affine[size_t(y) * dim + xx - 1];
                    if (xx < dim - 1)
                        acc += kn * affine[size_t(y) * dim + xx + 1];
                    conv[size_t(y) * dim + xx] = acc;
                }
                ctx.store(&conv[i], 16);
            }
        }
        ctx.barrier();

        // Stage 3: levels adjustment (gamma-ish LUT math).
        for (int y = rlo; y < rhi; ++y) {
            for (int x = 0; x < dim; x += 4) {
                size_t i = size_t(y) * dim + x;
                ctx.load(&conv[i], 16);
                ctx.fp(12);
                for (int u = 0; u < 4 && x + u < dim; ++u) {
                    float v = conv[i + u];
                    v = v < 0.0f ? 0.0f : (v > 255.0f ? 255.0f : v);
                    out[i + u] = 255.0f *
                                 std::pow(v / 255.0f, 0.9f);
                }
                ctx.store(&out[i], 16);
            }
        }
    });

    digest = core::hashRange(out.begin(), out.end());
}

void
registerVips()
{
    core::Registry::instance().add(
        kInfo, [] { return std::make_unique<Vips>(); });
}

} // namespace workloads
} // namespace rodinia
