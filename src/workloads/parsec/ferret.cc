#include "workloads/parsec/parsec.hh"

#include <cmath>
#include <memory>

#include "support/logging.hh"
#include "support/rng.hh"
#include "workloads/parsec/pipeline.hh"

namespace rodinia {
namespace workloads {

namespace {

const core::WorkloadInfo kInfo = {
    "ferret",
    "Ferret",
    core::Suite::Parsec,
    "MapReduce",
    "Similarity Search",
    "256 queries vs 8192-image index, 4-stage pipeline",
    "Pipelined content-based similarity search with LSH probing",
    "32768 images, 256 queries",
};

constexpr int kDim = 64;
constexpr int kTables = 8;
constexpr int kCandidates = 48;

struct Query
{
    int id;
    std::vector<float> feature;
};

struct Probed
{
    int id;
    std::vector<float> feature;
    std::vector<int> candidates;
};

} // namespace

const core::WorkloadInfo &
Ferret::info() const
{
    return kInfo;
}

void
Ferret::runCpu(trace::TraceSession &session, core::Scale scale)
{
    int dbSize, queries;
    switch (scale) {
      case core::Scale::Tiny:
        dbSize = 1024;
        queries = 32;
        break;
      case core::Scale::Small:
        dbSize = 4096;
        queries = 128;
        break;
      case core::Scale::Paper:
        dbSize = 32768;
        queries = 256;
        break;
      default:
        dbSize = 8192;
        queries = 256;
        break;
    }
    const int nt = session.numThreads();
    if (nt < 3)
        fatal("ferret's pipeline needs at least 3 threads, got ", nt);

    Rng rng(0xFE44E7);
    // Image database: feature vectors plus LSH hyperplanes/buckets.
    std::vector<float> db(size_t(dbSize) * kDim);
    for (auto &v : db)
        v = float(rng.gaussian());
    std::vector<float> planes(size_t(kTables) * kDim);
    for (auto &v : planes)
        v = float(rng.gaussian());

    constexpr int kBuckets = 256;
    auto hashOf = [&](const float *vec, int table) {
        // 8 sign bits from shifted dot products with one hyperplane.
        unsigned h = 0;
        for (int b = 0; b < 8; ++b) {
            double dot = 0.0;
            for (int f = 0; f < kDim; f += 8)
                dot += vec[f] * planes[size_t(table) * kDim +
                                       (f + b) % kDim];
            if (dot > 0.0)
                h |= 1u << b;
        }
        return h;
    };
    // Hash tables in CSR form (two flat arrays instead of one small
    // heap block per bucket): the probed addresses then live in two
    // fixed allocations whose internal layout is the same every run.
    const size_t nBuckets = size_t(kTables) * kBuckets;
    std::vector<int> bucketStart(nBuckets + 1, 0);
    std::vector<int> bucketItems(size_t(dbSize) * kTables);
    for (int i = 0; i < dbSize; ++i)
        for (int tb = 0; tb < kTables; ++tb)
            ++bucketStart[size_t(tb) * kBuckets +
                          hashOf(&db[size_t(i) * kDim], tb) + 1];
    for (size_t b = 0; b < nBuckets; ++b)
        bucketStart[b + 1] += bucketStart[b];
    {
        std::vector<int> fill(bucketStart.begin(),
                              bucketStart.end() - 1);
        for (int i = 0; i < dbSize; ++i)
            for (int tb = 0; tb < kTables; ++tb)
                bucketItems[size_t(
                    fill[size_t(tb) * kBuckets +
                         hashOf(&db[size_t(i) * kDim], tb)]++)] = i;
    }

    // Deterministic pipeline lanes: queries are routed to extract
    // lane (id % lanes), and lane L's extractor feeds lane L's ranker
    // through a single-producer single-consumer queue. Every thread's
    // arrival order is then a pure function of the query stream
    // instead of cross-thread pop timing.
    const int lanes = (nt - 1) / 2;
    std::vector<std::unique_ptr<BoundedQueue<Query>>> extractQ;
    std::vector<std::unique_ptr<BoundedQueue<Probed>>> rankQ;
    for (int l = 0; l < lanes; ++l) {
        extractQ.push_back(std::make_unique<BoundedQueue<Query>>(64));
        rankQ.push_back(std::make_unique<BoundedQueue<Probed>>(64));
    }
    std::vector<int> best(queries, -1);

    session.run([&](trace::ThreadCtx &ctx) {
        // Hot-code size of the application this
        // workload models (Fig. 11 substitution).
        ctx.codeRegion(150 * 1024);
        const int t = ctx.tid();

        if (t == 0) {
            // Stage 1: synthesize/segment query images.
            Rng qrng(0x9E44);
            for (int q = 0; q < queries; ++q) {
                Query qu;
                qu.id = q;
                qu.feature.resize(kDim);
                int base = int(qrng.below(uint64_t(dbSize)));
                for (int f = 0; f < kDim; ++f) {
                    ctx.load(&db[size_t(base) * kDim + f], 4);
                    ctx.fp(2);
                    qu.feature[f] = db[size_t(base) * kDim + f] +
                                    0.1f * float(qrng.gaussian());
                }
                extractQ[size_t(q % lanes)]->push(std::move(qu));
            }
            for (int l = 0; l < lanes; ++l)
                extractQ[size_t(l)]->close();
        } else if (t <= lanes) {
            // Stage 2: feature normalization + LSH index probe.
            const int lane = t - 1;
            while (auto q = extractQ[size_t(lane)]->pop()) {
                float norm = 0.0f;
                for (int f = 0; f < kDim; ++f) {
                    ctx.fp(2);
                    norm += q->feature[f] * q->feature[f];
                }
                norm = std::sqrt(norm) + 1e-6f;
                for (int f = 0; f < kDim; ++f)
                    q->feature[f] /= norm;
                ctx.fp(kDim + 2);

                Probed pr;
                pr.id = q->id;
                pr.feature = q->feature;
                for (int tb = 0; tb < kTables; ++tb) {
                    ctx.load(&planes[size_t(tb) * kDim], 16);
                    ctx.fp(2 * kDim);
                    unsigned h = hashOf(q->feature.data(), tb);
                    size_t b = size_t(tb) * kBuckets + h;
                    for (int k = bucketStart[b];
                         k < bucketStart[b + 1]; ++k) {
                        int cand = bucketItems[size_t(k)];
                        ctx.load(&bucketItems[size_t(k)], 4);
                        ctx.branch();
                        if (int(pr.candidates.size()) < kCandidates)
                            pr.candidates.push_back(cand);
                    }
                }
                rankQ[size_t(lane)]->push(std::move(pr));
            }
            rankQ[size_t(lane)]->close();
        } else if (t <= 2 * lanes) {
            // Stage 3: rank this lane's candidates by true distance.
            const int lane = t - 1 - lanes;
            while (auto pr = rankQ[size_t(lane)]->pop()) {
                float bestDist = 1e30f;
                int bestId = -1;
                for (int cand : pr->candidates) {
                    float dist = 0.0f;
                    for (int f = 0; f < kDim; f += 4) {
                        ctx.load(&db[size_t(cand) * kDim + f], 16);
                        ctx.fp(3);
                        for (int u = 0; u < 4; ++u) {
                            float d = db[size_t(cand) * kDim + f + u] -
                                      pr->feature[f + u];
                            dist += d * d;
                        }
                    }
                    ctx.branch();
                    if (dist < bestDist) {
                        bestDist = dist;
                        bestId = cand;
                    }
                }
                best[pr->id] = bestId;
                ctx.store(&best[pr->id], 4);
            }
        }
        // Stage 4: output aggregation once the pipeline drains (any
        // thread beyond the lane pairs, e.g. t = 7 of 8).
        ctx.barrier();
        if (t == 2 * lanes + 1) {
            for (int q = 0; q < queries; ++q) {
                ctx.load(&best[q], 4);
                ctx.alu(1);
            }
        }
    });

    digest = core::hashRange(best.begin(), best.end());
}

void
registerFerret()
{
    core::Registry::instance().add(
        kInfo, [] { return std::make_unique<Ferret>(); });
}

} // namespace workloads
} // namespace rodinia
