#include "workloads/parsec/parsec.hh"

#include <atomic>
#include <cmath>

#include "support/logging.hh"
#include "support/rng.hh"
#include "workloads/parsec/pipeline.hh"

namespace rodinia {
namespace workloads {

namespace {

const core::WorkloadInfo kInfo = {
    "ferret",
    "Ferret",
    core::Suite::Parsec,
    "MapReduce",
    "Similarity Search",
    "256 queries vs 8192-image index, 4-stage pipeline",
    "Pipelined content-based similarity search with LSH probing",
};

constexpr int kDim = 64;
constexpr int kTables = 8;
constexpr int kCandidates = 48;

struct Query
{
    int id;
    std::vector<float> feature;
};

struct Probed
{
    int id;
    std::vector<float> feature;
    std::vector<int> candidates;
};

} // namespace

const core::WorkloadInfo &
Ferret::info() const
{
    return kInfo;
}

void
Ferret::runCpu(trace::TraceSession &session, core::Scale scale)
{
    int dbSize, queries;
    switch (scale) {
      case core::Scale::Tiny:
        dbSize = 1024;
        queries = 32;
        break;
      case core::Scale::Small:
        dbSize = 4096;
        queries = 128;
        break;
      default:
        dbSize = 8192;
        queries = 256;
        break;
    }
    const int nt = session.numThreads();
    if (nt < 3)
        fatal("ferret's pipeline needs at least 3 threads, got ", nt);

    Rng rng(0xFE44E7);
    // Image database: feature vectors plus LSH hyperplanes/buckets.
    std::vector<float> db(size_t(dbSize) * kDim);
    for (auto &v : db)
        v = float(rng.gaussian());
    std::vector<float> planes(size_t(kTables) * kDim);
    for (auto &v : planes)
        v = float(rng.gaussian());

    constexpr int kBuckets = 256;
    std::vector<std::vector<int>> buckets(size_t(kTables) * kBuckets);
    auto hashOf = [&](const float *vec, int table) {
        // 8 sign bits from shifted dot products with one hyperplane.
        unsigned h = 0;
        for (int b = 0; b < 8; ++b) {
            double dot = 0.0;
            for (int f = 0; f < kDim; f += 8)
                dot += vec[f] * planes[size_t(table) * kDim +
                                       (f + b) % kDim];
            if (dot > 0.0)
                h |= 1u << b;
        }
        return h;
    };
    for (int i = 0; i < dbSize; ++i)
        for (int tb = 0; tb < kTables; ++tb)
            buckets[size_t(tb) * kBuckets +
                    hashOf(&db[size_t(i) * kDim], tb)]
                .push_back(i);

    BoundedQueue<Query> extractQ(64);
    BoundedQueue<Probed> rankQ(64);
    std::vector<int> best(queries, -1);
    std::atomic<int> extractorsLeft{std::max(1, (nt - 2) / 2)};

    session.run([&](trace::ThreadCtx &ctx) {
        // Hot-code size of the application this
        // workload models (Fig. 11 substitution).
        ctx.codeRegion(150 * 1024);
        const int t = ctx.tid();
        const int extractors = std::max(1, (nt - 2) / 2);

        if (t == 0) {
            // Stage 1: synthesize/segment query images.
            Rng qrng(0x9E44);
            for (int q = 0; q < queries; ++q) {
                Query qu;
                qu.id = q;
                qu.feature.resize(kDim);
                int base = int(qrng.below(uint64_t(dbSize)));
                for (int f = 0; f < kDim; ++f) {
                    ctx.load(&db[size_t(base) * kDim + f], 4);
                    ctx.fp(2);
                    qu.feature[f] = db[size_t(base) * kDim + f] +
                                    0.1f * float(qrng.gaussian());
                }
                extractQ.push(std::move(qu));
            }
            extractQ.close();
        } else if (t <= extractors) {
            // Stage 2: feature normalization + LSH index probe.
            while (auto q = extractQ.pop()) {
                float norm = 0.0f;
                for (int f = 0; f < kDim; ++f) {
                    ctx.fp(2);
                    norm += q->feature[f] * q->feature[f];
                }
                norm = std::sqrt(norm) + 1e-6f;
                for (int f = 0; f < kDim; ++f)
                    q->feature[f] /= norm;
                ctx.fp(kDim + 2);

                Probed pr;
                pr.id = q->id;
                pr.feature = q->feature;
                for (int tb = 0; tb < kTables; ++tb) {
                    ctx.load(&planes[size_t(tb) * kDim], 16);
                    ctx.fp(2 * kDim);
                    unsigned h = hashOf(q->feature.data(), tb);
                    const auto &bucket =
                        buckets[size_t(tb) * kBuckets + h];
                    for (int cand : bucket) {
                        ctx.load(&bucket[0], 4);
                        ctx.branch();
                        if (int(pr.candidates.size()) < kCandidates)
                            pr.candidates.push_back(cand);
                    }
                }
                rankQ.push(std::move(pr));
            }
            if (extractorsLeft.fetch_sub(1) == 1)
                rankQ.close();
        } else {
            // Stage 3: rank candidates by true distance.
            while (auto pr = rankQ.pop()) {
                float bestDist = 1e30f;
                int bestId = -1;
                for (int cand : pr->candidates) {
                    float dist = 0.0f;
                    for (int f = 0; f < kDim; f += 4) {
                        ctx.load(&db[size_t(cand) * kDim + f], 16);
                        ctx.fp(3);
                        for (int u = 0; u < 4; ++u) {
                            float d = db[size_t(cand) * kDim + f + u] -
                                      pr->feature[f + u];
                            dist += d * d;
                        }
                    }
                    ctx.branch();
                    if (dist < bestDist) {
                        bestDist = dist;
                        bestId = cand;
                    }
                }
                best[pr->id] = bestId;
                ctx.store(&best[pr->id], 4);
            }
        }
    });

    digest = core::hashRange(best.begin(), best.end());
}

void
registerFerret()
{
    core::Registry::instance().add(
        kInfo, [] { return std::make_unique<Ferret>(); });
}

} // namespace workloads
} // namespace rodinia
