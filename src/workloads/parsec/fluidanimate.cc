#include "workloads/parsec/parsec.hh"

#include <cmath>

#include "support/rng.hh"

namespace rodinia {
namespace workloads {

namespace {

const core::WorkloadInfo kInfo = {
    "fluidanimate",
    "Fluidanimate",
    core::Suite::Parsec,
    "Structured Grid",
    "Animation",
    "8192 particles, 2 frames",
    "Smoothed-particle-hydrodynamics fluid simulation",
    "32768 particles, 3 frames",
};

} // namespace

const core::WorkloadInfo &
Fluidanimate::info() const
{
    return kInfo;
}

void
Fluidanimate::runCpu(trace::TraceSession &session, core::Scale scale)
{
    int particles, frames;
    switch (scale) {
      case core::Scale::Tiny:
        particles = 1024;
        frames = 1;
        break;
      case core::Scale::Small:
        particles = 4096;
        frames = 2;
        break;
      case core::Scale::Paper:
        particles = 32768;
        frames = 3;
        break;
      default:
        particles = 8192;
        frames = 2;
        break;
    }
    const int gridN = 16; //!< cells per axis
    const float cell = 1.0f;
    const float h = 1.0f, h2 = h * h;

    Rng rng(0xF1D);
    std::vector<float> px(particles), py(particles), pz(particles);
    // Double-buffered positions: each frame reads px/py/pz and writes
    // qx/qy/qz (Jacobi-style update). Neighbor reads in the force
    // pass therefore never race with this frame's integration
    // stores, so every computed value — and every recorded branch —
    // is a pure function of the previous frame's state.
    std::vector<float> qx(particles), qy(particles), qz(particles);
    std::vector<float> vx(particles, 0.0f), vy(particles, 0.0f),
        vz(particles, 0.0f);
    std::vector<float> density(particles, 0.0f);
    for (int i = 0; i < particles; ++i) {
        px[i] = float(rng.uniform(0.0, gridN * cell));
        py[i] = float(rng.uniform(0.0, gridN * cell));
        pz[i] = float(rng.uniform(0.0, gridN * cell));
    }

    // Cell lists in CSR form, rebuilt each frame by thread 0. Flat
    // arrays sized up front (instead of per-cell vectors grown from
    // inside worker threads) so the traced addresses come from these
    // fixed allocations.
    const size_t numCells = size_t(gridN) * gridN * gridN;
    std::vector<int> cellStart(numCells + 1, 0);
    std::vector<int> cellItems(size_t(particles), 0);
    auto cellOf = [&](int i) {
        int cx = std::min(gridN - 1, std::max(0, int(px[i] / cell)));
        int cy = std::min(gridN - 1, std::max(0, int(py[i] / cell)));
        int cz = std::min(gridN - 1, std::max(0, int(pz[i] / cell)));
        return (size_t(cz) * gridN + cy) * gridN + cx;
    };
    const int nt = session.numThreads();

    session.run([&](trace::ThreadCtx &ctx) {
        // Hot-code size of the application this
        // workload models (Fig. 11 substitution).
        ctx.codeRegion(60 * 1024);
        const int t = ctx.tid();
        const int lo = particles * t / nt;
        const int hi = particles * (t + 1) / nt;

        for (int f = 0; f < frames; ++f) {
            if (t == 0) {
                // Counting sort into CSR: count, prefix-sum, fill.
                std::fill(cellStart.begin(), cellStart.end(), 0);
                for (int i = 0; i < particles; ++i) {
                    ctx.load(&px[i], 12);
                    ctx.alu(6);
                    ++cellStart[cellOf(i) + 1];
                }
                for (size_t c = 0; c < numCells; ++c)
                    cellStart[c + 1] += cellStart[c];
                std::vector<int> fill(cellStart.begin(),
                                      cellStart.end() - 1);
                for (int i = 0; i < particles; ++i) {
                    int pos = fill[cellOf(i)]++;
                    cellItems[size_t(pos)] = i;
                    ctx.store(&cellItems[size_t(pos)], 4);
                }
            }
            ctx.barrier();

            // Density pass over neighboring cells.
            for (int i = lo; i < hi; ++i) {
                float rho = 0.0f;
                int cx = std::min(gridN - 1,
                                  std::max(0, int(px[i] / cell)));
                int cy = std::min(gridN - 1,
                                  std::max(0, int(py[i] / cell)));
                int cz = std::min(gridN - 1,
                                  std::max(0, int(pz[i] / cell)));
                ctx.load(&px[i], 12);
                for (int dz = -1; dz <= 1; ++dz) {
                    for (int dy = -1; dy <= 1; ++dy) {
                        for (int dx = -1; dx <= 1; ++dx) {
                            int nx = cx + dx, ny = cy + dy,
                                nz = cz + dz;
                            ctx.branch();
                            if (nx < 0 || ny < 0 || nz < 0 ||
                                nx >= gridN || ny >= gridN ||
                                nz >= gridN)
                                continue;
                            size_t c = (size_t(nz) * gridN + ny) *
                                           gridN +
                                       nx;
                            for (int k = cellStart[c];
                                 k < cellStart[c + 1]; ++k) {
                                int j = cellItems[size_t(k)];
                                ctx.load(&cellItems[size_t(k)], 4);
                                ctx.load(&px[j], 12);
                                float ddx = px[j] - px[i];
                                float ddy = py[j] - py[i];
                                float ddz = pz[j] - pz[i];
                                float r2 = ddx * ddx + ddy * ddy +
                                           ddz * ddz;
                                ctx.fp(8);
                                ctx.branch();
                                if (r2 < h2) {
                                    float w = h2 - r2;
                                    rho += w * w * w;
                                    ctx.fp(3);
                                }
                            }
                        }
                    }
                }
                density[i] = rho;
                ctx.store(&density[i], 4);
            }
            ctx.barrier();

            // Force + integration pass (pressure from density).
            for (int i = lo; i < hi; ++i) {
                float pi = (ctx.ld(&density[i]) - 1.0f) * 2.0f;
                float fx2 = 0.0f, fy2 = 0.0f, fz2 = -9.8f;
                int cx = std::min(gridN - 1,
                                  std::max(0, int(px[i] / cell)));
                int cy = std::min(gridN - 1,
                                  std::max(0, int(py[i] / cell)));
                int cz = std::min(gridN - 1,
                                  std::max(0, int(pz[i] / cell)));
                for (int dz = -1; dz <= 1; ++dz) {
                    for (int dy = -1; dy <= 1; ++dy) {
                        for (int dx = -1; dx <= 1; ++dx) {
                            int nx = cx + dx, ny = cy + dy,
                                nz = cz + dz;
                            ctx.branch();
                            if (nx < 0 || ny < 0 || nz < 0 ||
                                nx >= gridN || ny >= gridN ||
                                nz >= gridN)
                                continue;
                            size_t c = (size_t(nz) * gridN + ny) *
                                           gridN +
                                       nx;
                            for (int k = cellStart[c];
                                 k < cellStart[c + 1]; ++k) {
                                int j = cellItems[size_t(k)];
                                if (j == i)
                                    continue;
                                ctx.load(&cellItems[size_t(k)], 4);
                                ctx.load(&px[j], 12);
                                ctx.load(&density[j], 4);
                                float ddx = px[j] - px[i];
                                float ddy = py[j] - py[i];
                                float ddz = pz[j] - pz[i];
                                float r2 = ddx * ddx + ddy * ddy +
                                           ddz * ddz;
                                ctx.fp(10);
                                ctx.branch();
                                if (r2 < h2 && r2 > 1e-8f) {
                                    float pj =
                                        (density[j] - 1.0f) * 2.0f;
                                    float s = -(pi + pj) /
                                              (2.0f * (r2 + 0.1f));
                                    fx2 += s * ddx;
                                    fy2 += s * ddy;
                                    fz2 += s * ddz;
                                    ctx.fp(9);
                                }
                            }
                        }
                    }
                }
                const float dt = 0.002f;
                vx[i] += dt * fx2;
                vy[i] += dt * fy2;
                vz[i] += dt * fz2;
                qx[i] = std::min(float(gridN) - 0.01f,
                                 std::max(0.0f, px[i] + dt * vx[i]));
                qy[i] = std::min(float(gridN) - 0.01f,
                                 std::max(0.0f, py[i] + dt * vy[i]));
                qz[i] = std::min(float(gridN) - 0.01f,
                                 std::max(0.0f, pz[i] + dt * vz[i]));
                ctx.fp(12);
                ctx.store(&qx[i], 12);
                ctx.store(&vx[i], 12);
            }
            ctx.barrier();
            // Publish the frame's positions: only thread 0 runs
            // between this barrier and the next frame's rebuild (or
            // session exit), so the swap is unracing by construction.
            if (t == 0) {
                px.swap(qx);
                py.swap(qy);
                pz.swap(qz);
            }
        }
    });

    digest = core::hashRange(px.begin(), px.end());
    digest = core::hashCombine(digest,
                               core::hashRange(pz.begin(), pz.end()));
}

void
registerFluidanimate()
{
    core::Registry::instance().add(
        kInfo, [] { return std::make_unique<Fluidanimate>(); });
}

} // namespace workloads
} // namespace rodinia
