#include "workloads/parsec/parsec.hh"

#include <cmath>

#include "support/rng.hh"

namespace rodinia {
namespace workloads {

namespace {

const core::WorkloadInfo kInfo = {
    "facesim",
    "Facesim",
    core::Suite::Parsec,
    "Unstructured Grid",
    "Animation",
    "8192 vertices, 4 timesteps",
    "Spring-mass deformable-face physics with semi-implicit Euler",
    "32768 vertices, 4 steps",
};

} // namespace

const core::WorkloadInfo &
Facesim::info() const
{
    return kInfo;
}

void
Facesim::runCpu(trace::TraceSession &session, core::Scale scale)
{
    int vertices, steps;
    switch (scale) {
      case core::Scale::Tiny:
        vertices = 1024;
        steps = 2;
        break;
      case core::Scale::Small:
        vertices = 4096;
        steps = 3;
        break;
      case core::Scale::Paper:
        vertices = 32768;
        steps = 4;
        break;
      default:
        vertices = 8192;
        steps = 4;
        break;
    }
    const int springsPerVertex = 4;

    Rng rng(0xFACE);
    std::vector<float> posX(vertices), posY(vertices), posZ(vertices);
    std::vector<float> velX(vertices, 0.0f), velY(vertices, 0.0f),
        velZ(vertices, 0.0f);
    std::vector<float> frcX(vertices, 0.0f), frcY(vertices, 0.0f),
        frcZ(vertices, 0.0f);
    std::vector<int> springTo(size_t(vertices) * springsPerVertex);
    std::vector<float> restLen(size_t(vertices) * springsPerVertex);
    for (int i = 0; i < vertices; ++i) {
        posX[i] = float(rng.uniform(0.0, 10.0));
        posY[i] = float(rng.uniform(0.0, 10.0));
        posZ[i] = float(rng.uniform(0.0, 10.0));
        for (int s = 0; s < springsPerVertex; ++s) {
            // Mostly local connectivity (a face mesh), some long range.
            int o;
            if (rng.chance(0.9))
                o = std::min(vertices - 1,
                             i + 1 + int(rng.below(16)));
            else
                o = int(rng.below(uint64_t(vertices)));
            springTo[size_t(i) * springsPerVertex + s] = o;
            restLen[size_t(i) * springsPerVertex + s] =
                float(rng.uniform(0.5, 2.0));
        }
    }
    const int nt = session.numThreads();
    const float k = 5.0f, dt = 0.01f, damp = 0.98f;

    session.run([&](trace::ThreadCtx &ctx) {
        // Hot-code size of the application this
        // workload models (Fig. 11 substitution).
        ctx.codeRegion(250 * 1024);
        const int t = ctx.tid();
        const int lo = vertices * t / nt;
        const int hi = vertices * (t + 1) / nt;

        for (int step = 0; step < steps; ++step) {
            // Force gather: each thread owns its vertex range;
            // spring partners may live in other threads' ranges
            // (read sharing at partition boundaries).
            for (int i = lo; i < hi; ++i) {
                float fx = 0.0f, fy = 0.0f, fz = -9.8f;
                ctx.load(&posX[i], 4);
                ctx.load(&posY[i], 4);
                ctx.load(&posZ[i], 4);
                for (int s = 0; s < springsPerVertex; ++s) {
                    int o = ctx.ld(
                        &springTo[size_t(i) * springsPerVertex + s]);
                    float rl = ctx.ld(
                        &restLen[size_t(i) * springsPerVertex + s]);
                    ctx.load(&posX[o], 4);
                    ctx.load(&posY[o], 4);
                    ctx.load(&posZ[o], 4);
                    float dx = posX[o] - posX[i];
                    float dy = posY[o] - posY[i];
                    float dz = posZ[o] - posZ[i];
                    float len =
                        std::sqrt(dx * dx + dy * dy + dz * dz) + 1e-6f;
                    float f = k * (len - rl) / len;
                    ctx.fp(14);
                    fx += f * dx;
                    fy += f * dy;
                    fz += f * dz;
                }
                frcX[i] = fx;
                frcY[i] = fy;
                frcZ[i] = fz;
                ctx.store(&frcX[i], 4);
                ctx.store(&frcY[i], 4);
                ctx.store(&frcZ[i], 4);
            }
            ctx.barrier();

            // Integrate.
            for (int i = lo; i < hi; ++i) {
                ctx.load(&frcX[i], 4);
                ctx.load(&velX[i], 4);
                ctx.fp(12);
                velX[i] = (velX[i] + dt * frcX[i]) * damp;
                velY[i] = (velY[i] + dt * frcY[i]) * damp;
                velZ[i] = (velZ[i] + dt * frcZ[i]) * damp;
                posX[i] += dt * velX[i];
                posY[i] += dt * velY[i];
                posZ[i] += dt * velZ[i];
                ctx.store(&posX[i], 4);
                ctx.store(&posY[i], 4);
                ctx.store(&posZ[i], 4);
            }
            ctx.barrier();
        }
    });

    digest = core::hashRange(posX.begin(), posX.end());
    digest = core::hashCombine(
        digest, core::hashRange(posZ.begin(), posZ.end()));
}

void
registerFacesim()
{
    core::Registry::instance().add(
        kInfo, [] { return std::make_unique<Facesim>(); });
}

} // namespace workloads
} // namespace rodinia
