#include "workloads/parsec/parsec.hh"

#include <cmath>

#include "support/rng.hh"

namespace rodinia {
namespace workloads {

namespace {

const core::WorkloadInfo kInfo = {
    "blackscholes",
    "Blackscholes",
    core::Suite::Parsec,
    "Dense Linear Algebra",
    "Financial Analysis",
    "32768 options, 10 rounds",
    "Black-Scholes PDE closed-form portfolio pricing",
    "65536 options, 20 rounds (simlarge)",
};

struct Option
{
    float spot, strike, rate, vol, time;
    int isCall;
};

/** Cumulative normal distribution (Abramowitz-Stegun polynomial). */
inline float
cndf(float x)
{
    const float a1 = 0.319381530f, a2 = -0.356563782f,
                a3 = 1.781477937f, a4 = -1.821255978f,
                a5 = 1.330274429f;
    float sign = x < 0.0f ? -1.0f : 1.0f;
    float ax = std::fabs(x);
    float k = 1.0f / (1.0f + 0.2316419f * ax);
    float poly =
        k * (a1 + k * (a2 + k * (a3 + k * (a4 + k * a5))));
    float n = 1.0f -
              0.3989422804f * std::exp(-0.5f * ax * ax) * poly;
    return sign > 0.0f ? n : 1.0f - n;
}

inline float
priceOf(const Option &o)
{
    float sqrtT = std::sqrt(o.time);
    float d1 = (std::log(o.spot / o.strike) +
                (o.rate + 0.5f * o.vol * o.vol) * o.time) /
               (o.vol * sqrtT);
    float d2 = d1 - o.vol * sqrtT;
    float call = o.spot * cndf(d1) -
                 o.strike * std::exp(-o.rate * o.time) * cndf(d2);
    if (o.isCall)
        return call;
    // Put-call parity.
    return call - o.spot + o.strike * std::exp(-o.rate * o.time);
}

} // namespace

const core::WorkloadInfo &
Blackscholes::info() const
{
    return kInfo;
}

void
Blackscholes::runCpu(trace::TraceSession &session, core::Scale scale)
{
    int n, rounds;
    switch (scale) {
      case core::Scale::Tiny:
        n = 2048;
        rounds = 1;
        break;
      case core::Scale::Small:
        n = 8192;
        rounds = 2;
        break;
      case core::Scale::Paper:
        n = 65536;
        rounds = 20;
        break;
      default:
        n = 32768;
        rounds = 10;
        break;
    }

    Rng rng(0xB5);
    std::vector<Option> options(n);
    for (auto &o : options) {
        o.spot = float(rng.uniform(10.0, 100.0));
        o.strike = float(rng.uniform(10.0, 100.0));
        o.rate = float(rng.uniform(0.01, 0.1));
        o.vol = float(rng.uniform(0.1, 0.6));
        o.time = float(rng.uniform(0.2, 2.0));
        o.isCall = rng.chance(0.5) ? 1 : 0;
    }
    std::vector<float> prices(n, 0.0f);
    const int nt = session.numThreads();

    session.run([&](trace::ThreadCtx &ctx) {
        // Hot-code size of the application this
        // workload models (Fig. 11 substitution).
        ctx.codeRegion(12 * 1024);
        const int t = ctx.tid();
        const int lo = n * t / nt;
        const int hi = n * (t + 1) / nt;
        for (int r = 0; r < rounds; ++r) {
            for (int i = lo; i < hi; ++i) {
                ctx.load(&options[i], 16);
                ctx.load(&reinterpret_cast<const char *>(
                             &options[i])[16],
                         sizeof(Option) - 16);
                ctx.fp(44); // logs, exps, and the CNDF polynomials
                ctx.branch(2);
                prices[i] = priceOf(options[i]);
                ctx.store(&prices[i], 4);
            }
            ctx.barrier();
        }
    });

    digest = core::hashRange(prices.begin(), prices.end());
}

void
registerBlackscholes()
{
    core::Registry::instance().add(
        kInfo, [] { return std::make_unique<Blackscholes>(); });
}

} // namespace workloads
} // namespace rodinia
