/**
 * @file
 * Bounded work queue for software-pipelined workloads.
 *
 * Dedup and Ferret reproduce Parsec's pipeline parallelism: threads
 * take stage roles and pass work items through bounded queues. The
 * queue itself is ordinary synchronized code (its accesses are not
 * instrumented, matching how Pin-based studies attribute time to the
 * application's work rather than to the runtime).
 */

#ifndef RODINIA_WORKLOADS_PARSEC_PIPELINE_HH
#define RODINIA_WORKLOADS_PARSEC_PIPELINE_HH

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>

namespace rodinia {
namespace workloads {

/** Bounded multi-producer multi-consumer queue of T. */
template <typename T>
class BoundedQueue
{
  public:
    explicit BoundedQueue(size_t capacity = 64) : capacity(capacity) {}

    /** Push one item; blocks while the queue is full. */
    void
    push(T item)
    {
        std::unique_lock<std::mutex> lock(mtx);
        notFull.wait(lock,
                     [this] { return items.size() < capacity; });
        items.push_back(std::move(item));
        notEmpty.notify_one();
    }

    /**
     * Pop one item; blocks until an item arrives or the queue is
     * closed and drained (then returns nullopt).
     */
    std::optional<T>
    pop()
    {
        std::unique_lock<std::mutex> lock(mtx);
        notEmpty.wait(lock,
                      [this] { return !items.empty() || closed; });
        if (items.empty())
            return std::nullopt;
        T item = std::move(items.front());
        items.pop_front();
        notFull.notify_one();
        return item;
    }

    /** Signal that no more items will be pushed. */
    void
    close()
    {
        std::lock_guard<std::mutex> lock(mtx);
        closed = true;
        notEmpty.notify_all();
    }

  private:
    size_t capacity;
    std::mutex mtx;
    std::condition_variable notFull;
    std::condition_variable notEmpty;
    std::deque<T> items;
    bool closed = false;
};

} // namespace workloads
} // namespace rodinia

#endif // RODINIA_WORKLOADS_PARSEC_PIPELINE_HH
