#include "workloads/parsec/parsec.hh"

#include <cmath>

#include "support/rng.hh"

namespace rodinia {
namespace workloads {

namespace {

const core::WorkloadInfo kInfo = {
    "bodytrack",
    "Bodytrack",
    core::Suite::Parsec,
    "Structured Grid",
    "Computer Vision",
    "3 frames, 2048 particles",
    "Annealed particle filter tracking a pose against image evidence",
    "4000 particles, 4 frames (simlarge)",
};

} // namespace

const core::WorkloadInfo &
Bodytrack::info() const
{
    return kInfo;
}

void
Bodytrack::runCpu(trace::TraceSession &session, core::Scale scale)
{
    int particles, frames;
    const int dim = 128;
    switch (scale) {
      case core::Scale::Tiny:
        particles = 256;
        frames = 2;
        break;
      case core::Scale::Small:
        particles = 1024;
        frames = 2;
        break;
      case core::Scale::Paper:
        particles = 4000;
        frames = 4;
        break;
      default:
        particles = 2048;
        frames = 3;
        break;
    }

    Rng rng(0xB0D7);
    // Observation images: one edge map per frame, read-shared by all
    // particle evaluations.
    std::vector<std::vector<float>> images(frames);
    for (auto &img : images) {
        img.resize(size_t(dim) * dim);
        for (auto &v : img)
            v = float(rng.uniform(0.0, 1.0));
    }

    struct Particle
    {
        float x, y, angle;
        float weight;
    };
    std::vector<Particle> ps(particles);
    for (auto &p : ps) {
        p.x = float(rng.uniform(32.0, 96.0));
        p.y = float(rng.uniform(32.0, 96.0));
        p.angle = float(rng.uniform(0.0, 6.28));
        p.weight = 1.0f / float(particles);
    }
    std::vector<Particle> resampled(particles);
    const int nt = session.numThreads();
    const int samples = 24;

    session.run([&](trace::ThreadCtx &ctx) {
        // Hot-code size of the application this
        // workload models (Fig. 11 substitution).
        ctx.codeRegion(180 * 1024);
        const int t = ctx.tid();
        const int lo = particles * t / nt;
        const int hi = particles * (t + 1) / nt;
        Rng local(0x9000 + t);

        for (int f = 0; f < frames; ++f) {
            const auto &img = images[f];
            // Propagate and weight each particle against the image.
            for (int i = lo; i < hi; ++i) {
                ctx.load(&ps[i], sizeof(Particle));
                ps[i].x += float(local.gaussian());
                ps[i].y += float(local.gaussian());
                ps[i].angle += 0.1f * float(local.gaussian());
                ctx.fp(6);

                float logLik = 0.0f;
                for (int s = 0; s < samples; ++s) {
                    float a = ps[i].angle + 0.26f * s;
                    int px = int(ps[i].x + 10.0f * std::cos(a));
                    int py = int(ps[i].y + 10.0f * std::sin(a));
                    px = std::min(std::max(px, 0), dim - 1);
                    py = std::min(std::max(py, 0), dim - 1);
                    ctx.fp(8);
                    ctx.alu(4);
                    ctx.load(&img[size_t(py) * dim + px], 4);
                    float e = img[size_t(py) * dim + px];
                    logLik += (e - 0.5f) * (e - 0.5f);
                }
                ps[i].weight = std::exp(-logLik);
                ctx.fp(2);
                ctx.store(&ps[i].weight, 4);
            }
            ctx.barrier();

            // Thread 0: normalize and systematic-resample.
            if (t == 0) {
                double total = 0.0;
                for (int i = 0; i < particles; ++i) {
                    ctx.load(&ps[i].weight, 4);
                    ctx.fp(1);
                    total += ps[i].weight;
                }
                if (total <= 0.0)
                    total = 1.0;
                double step = total / particles;
                double u = step * 0.5;
                double acc = ps[0].weight;
                int j = 0;
                for (int i = 0; i < particles; ++i) {
                    while (acc < u && j + 1 < particles) {
                        ++j;
                        ctx.load(&ps[j].weight, 4);
                        ctx.fp(1);
                        acc += ps[j].weight;
                    }
                    ctx.branch();
                    resampled[i] = ps[j];
                    ctx.store(&resampled[i], sizeof(Particle));
                    u += step;
                }
                std::swap(ps, resampled);
            }
            ctx.barrier();
        }
    });

    uint64_t h = 1469598103934665603ULL;
    for (const auto &p : ps)
        h = core::hashCombine(h, uint64_t(int64_t(p.x * 100)) ^
                                     uint64_t(int64_t(p.y * 100)));
    digest = h;
}

void
registerBodytrack()
{
    core::Registry::instance().add(
        kInfo, [] { return std::make_unique<Bodytrack>(); });
}

} // namespace workloads
} // namespace rodinia
