#include "stats/cluster.hh"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>
#include <sstream>

#include "support/logging.hh"

namespace rodinia {
namespace stats {

namespace {

/** Recursive helper producing leaves in display order. */
void
collectLeaves(const Linkage &lk, int node, std::vector<int> &out)
{
    if (node < lk.nLeaves) {
        out.push_back(node);
        return;
    }
    const Merge &m = lk.merges[node - lk.nLeaves];
    collectLeaves(lk, m.a, out);
    collectLeaves(lk, m.b, out);
}

} // namespace

std::vector<int>
Linkage::leafOrder() const
{
    std::vector<int> out;
    if (nLeaves == 0)
        return out;
    if (merges.empty()) {
        out.push_back(0);
        return out;
    }
    collectLeaves(*this, nLeaves + int(merges.size()) - 1, out);
    return out;
}

std::vector<int>
Linkage::cut(int k) const
{
    if (k < 1 || k > nLeaves)
        fatal("Linkage::cut: k must be in [1, nLeaves]");

    // Undo the last k - 1 merges: the roots of the remaining forest
    // are the clusters. Walk merges in order, tracking representative
    // sets via union-find over the first nMerges - (k - 1) merges.
    int keep = int(merges.size()) - (k - 1);
    std::vector<int> parent(nLeaves + merges.size());
    for (size_t i = 0; i < parent.size(); ++i)
        parent[i] = int(i);
    std::function<int(int)> find = [&](int x) {
        while (parent[x] != x) {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        return x;
    };
    for (int i = 0; i < keep; ++i) {
        int id = nLeaves + i;
        parent[find(merges[i].a)] = id;
        parent[find(merges[i].b)] = id;
    }

    std::vector<int> labels(nLeaves, -1);
    int next = 0;
    std::vector<int> rootLabel(parent.size(), -1);
    for (int leaf = 0; leaf < nLeaves; ++leaf) {
        int root = find(leaf);
        if (rootLabel[root] < 0)
            rootLabel[root] = next++;
        labels[leaf] = rootLabel[root];
    }
    return labels;
}

double
Linkage::copheneticDistance(int leaf_a, int leaf_b) const
{
    if (leaf_a == leaf_b)
        return 0.0;
    // Track the cluster containing each leaf through the merges; the
    // first merge joining both clusters sets the cophenetic distance.
    int ca = leaf_a;
    int cb = leaf_b;
    for (size_t i = 0; i < merges.size(); ++i) {
        int id = nLeaves + int(i);
        const Merge &m = merges[i];
        bool joins_a = (m.a == ca || m.b == ca);
        bool joins_b = (m.a == cb || m.b == cb);
        if (joins_a && joins_b)
            return m.dist;
        if (joins_a)
            ca = id;
        if (joins_b)
            cb = id;
    }
    panic("copheneticDistance: leaves never merged");
}

Matrix
pairwiseEuclidean(const Matrix &points)
{
    size_t n = points.rows();
    Matrix d(n, n);
    for (size_t i = 0; i < n; ++i) {
        for (size_t j = i + 1; j < n; ++j) {
            double acc = 0.0;
            for (size_t c = 0; c < points.cols(); ++c) {
                double diff = points.at(i, c) - points.at(j, c);
                acc += diff * diff;
            }
            d.at(i, j) = d.at(j, i) = std::sqrt(acc);
        }
    }
    return d;
}

Linkage
hierarchicalCluster(const Matrix &points, LinkageMethod method)
{
    return hierarchicalClusterFromDistances(pairwiseEuclidean(points),
                                            method);
}

Linkage
hierarchicalClusterFromDistances(const Matrix &dist, LinkageMethod method)
{
    if (dist.rows() != dist.cols())
        fatal("hierarchicalClusterFromDistances: non-square distances");
    const int n = int(dist.rows());

    Linkage lk;
    lk.nLeaves = n;
    if (n <= 1)
        return lk;

    // active[i]: current cluster id occupying slot i (or -1).
    // size[i]: number of leaves in that cluster.
    // d: working distance matrix over slots, updated Lance-Williams.
    std::vector<int> active(n);
    std::vector<int> size(n, 1);
    Matrix d = dist;
    for (int i = 0; i < n; ++i)
        active[i] = i;
    int alive = n;
    int next_id = n;

    while (alive > 1) {
        // Find the closest active pair.
        double best = std::numeric_limits<double>::infinity();
        int bi = -1, bj = -1;
        for (int i = 0; i < n; ++i) {
            if (active[i] < 0)
                continue;
            for (int j = i + 1; j < n; ++j) {
                if (active[j] < 0)
                    continue;
                if (d.at(i, j) < best) {
                    best = d.at(i, j);
                    bi = i;
                    bj = j;
                }
            }
        }

        lk.merges.push_back({active[bi], active[bj], best});

        // Merge slot bj into slot bi, updating distances.
        for (int k = 0; k < n; ++k) {
            if (active[k] < 0 || k == bi || k == bj)
                continue;
            double dik = d.at(bi, k);
            double djk = d.at(bj, k);
            double nd;
            switch (method) {
              case LinkageMethod::Single:
                nd = std::min(dik, djk);
                break;
              case LinkageMethod::Complete:
                nd = std::max(dik, djk);
                break;
              case LinkageMethod::Average:
              default:
                nd = (dik * size[bi] + djk * size[bj]) /
                     double(size[bi] + size[bj]);
                break;
            }
            d.at(bi, k) = d.at(k, bi) = nd;
        }
        size[bi] += size[bj];
        active[bi] = next_id++;
        active[bj] = -1;
        --alive;
    }
    return lk;
}

std::string
renderDendrogram(const Linkage &linkage,
                 const std::vector<std::string> &labels, int width)
{
    const int n = linkage.nLeaves;
    if (int(labels.size()) != n)
        fatal("renderDendrogram: need exactly one label per leaf");
    if (n == 0)
        return "";

    size_t label_w = 0;
    for (const auto &l : labels)
        label_w = std::max(label_w, l.size());
    label_w += 1;

    double max_dist = 1e-12;
    for (const auto &m : linkage.merges)
        max_dist = std::max(max_dist, m.dist);

    // Leaf rows in display order (one row per leaf).
    auto order = linkage.leafOrder();
    std::vector<int> rowOf(n, 0);
    for (int i = 0; i < n; ++i)
        rowOf[order[i]] = i;

    std::vector<std::string> grid(n, std::string(label_w + width + 2, ' '));
    for (int leaf = 0; leaf < n; ++leaf) {
        const std::string &l = labels[leaf];
        grid[rowOf[leaf]].replace(0, l.size(), l);
    }

    auto xcol = [&](double dist) {
        int x = int(dist / max_dist * (width - 1) + 0.5);
        return int(label_w) + std::clamp(x, 0, width - 1);
    };

    // Per-node display position: (row, column).
    std::vector<std::pair<double, int>> pos(n + linkage.merges.size());
    for (int leaf = 0; leaf < n; ++leaf)
        pos[leaf] = {double(rowOf[leaf]), int(label_w)};

    auto set = [&](int r, int c, char ch) {
        if (r >= 0 && r < n && c >= 0 && c < int(grid[r].size())) {
            // Preserve junctions: '+' wins over lines.
            if (grid[r][c] == '+' && ch != '+')
                return;
            grid[r][c] = ch;
        }
    };

    for (size_t i = 0; i < linkage.merges.size(); ++i) {
        const Merge &m = linkage.merges[i];
        int cx = xcol(m.dist);
        auto [ra, xa] = pos[m.a];
        auto [rb, xb] = pos[m.b];
        int ira = int(ra + 0.5), irb = int(rb + 0.5);
        for (int x = xa; x < cx; ++x)
            set(ira, x, '-');
        for (int x = xb; x < cx; ++x)
            set(irb, x, '-');
        int rlo = std::min(ira, irb), rhi = std::max(ira, irb);
        for (int r = rlo; r <= rhi; ++r)
            set(r, cx, '|');
        set(ira, cx, '+');
        set(irb, cx, '+');
        pos[n + i] = {(ra + rb) / 2.0, cx};
    }

    std::ostringstream os;
    for (const auto &row : grid) {
        std::string trimmed = row;
        while (!trimmed.empty() && trimmed.back() == ' ')
            trimmed.pop_back();
        os << trimmed << '\n';
    }
    os << std::string(label_w, ' ') << "0" << std::string(width - 8, ' ')
       << "dist=" << int(max_dist * 100) / 100.0 << '\n';
    return os.str();
}

} // namespace stats
} // namespace rodinia
