#include "stats/matrix.hh"

#include <cmath>

#include "support/logging.hh"

namespace rodinia {
namespace stats {

Matrix::Matrix(size_t rows, size_t cols)
    : nRows(rows), nCols(cols), elems(rows * cols, 0.0)
{
}

Matrix
Matrix::fromRows(const std::vector<std::vector<double>> &rows)
{
    if (rows.empty())
        return Matrix();
    Matrix m(rows.size(), rows[0].size());
    for (size_t r = 0; r < rows.size(); ++r) {
        if (rows[r].size() != m.nCols)
            fatal("Matrix::fromRows: ragged input at row ", r);
        for (size_t c = 0; c < m.nCols; ++c)
            m.at(r, c) = rows[r][c];
    }
    return m;
}

std::vector<double>
Matrix::row(size_t r) const
{
    std::vector<double> out(nCols);
    for (size_t c = 0; c < nCols; ++c)
        out[c] = at(r, c);
    return out;
}

std::vector<double>
Matrix::col(size_t c) const
{
    std::vector<double> out(nRows);
    for (size_t r = 0; r < nRows; ++r)
        out[r] = at(r, c);
    return out;
}

Matrix
Matrix::transposed() const
{
    Matrix t(nCols, nRows);
    for (size_t r = 0; r < nRows; ++r)
        for (size_t c = 0; c < nCols; ++c)
            t.at(c, r) = at(r, c);
    return t;
}

Matrix
Matrix::multiply(const Matrix &rhs) const
{
    if (nCols != rhs.nRows)
        panic("Matrix::multiply: dimension mismatch (", nRows, "x", nCols,
              ") * (", rhs.nRows, "x", rhs.nCols, ")");
    Matrix out(nRows, rhs.nCols);
    for (size_t r = 0; r < nRows; ++r) {
        for (size_t k = 0; k < nCols; ++k) {
            double v = at(r, k);
            if (v == 0.0)
                continue;
            for (size_t c = 0; c < rhs.nCols; ++c)
                out.at(r, c) += v * rhs.at(k, c);
        }
    }
    return out;
}

std::vector<double>
Matrix::colMeans() const
{
    std::vector<double> means(nCols, 0.0);
    if (nRows == 0)
        return means;
    for (size_t r = 0; r < nRows; ++r)
        for (size_t c = 0; c < nCols; ++c)
            means[c] += at(r, c);
    for (auto &m : means)
        m /= double(nRows);
    return means;
}

std::vector<double>
Matrix::colStddevs() const
{
    std::vector<double> sd(nCols, 0.0);
    if (nRows < 2)
        return sd;
    auto means = colMeans();
    for (size_t r = 0; r < nRows; ++r) {
        for (size_t c = 0; c < nCols; ++c) {
            double d = at(r, c) - means[c];
            sd[c] += d * d;
        }
    }
    for (auto &v : sd)
        v = std::sqrt(v / double(nRows - 1));
    return sd;
}

Matrix
Matrix::standardized() const
{
    auto means = colMeans();
    auto sds = colStddevs();
    Matrix out(nRows, nCols);
    for (size_t r = 0; r < nRows; ++r) {
        for (size_t c = 0; c < nCols; ++c) {
            double sd = sds[c];
            out.at(r, c) = sd > 1e-12 ? (at(r, c) - means[c]) / sd : 0.0;
        }
    }
    return out;
}

Matrix
Matrix::covariance() const
{
    auto means = colMeans();
    Matrix cov(nCols, nCols);
    if (nRows < 2)
        return cov;
    for (size_t r = 0; r < nRows; ++r) {
        for (size_t i = 0; i < nCols; ++i) {
            double di = at(r, i) - means[i];
            for (size_t j = i; j < nCols; ++j)
                cov.at(i, j) += di * (at(r, j) - means[j]);
        }
    }
    for (size_t i = 0; i < nCols; ++i) {
        for (size_t j = i; j < nCols; ++j) {
            cov.at(i, j) /= double(nRows - 1);
            cov.at(j, i) = cov.at(i, j);
        }
    }
    return cov;
}

} // namespace stats
} // namespace rodinia
