#include "stats/pca.hh"

#include "stats/eigen.hh"
#include "support/logging.hh"

namespace rodinia {
namespace stats {

size_t
PcaResult::componentsForVariance(double fraction) const
{
    double acc = 0.0;
    for (size_t i = 0; i < explained.size(); ++i) {
        acc += explained[i];
        if (acc >= fraction)
            return i + 1;
    }
    return explained.size();
}

PcaResult
runPca(const Matrix &data, bool standardize)
{
    if (data.rows() < 2 || data.cols() < 1)
        fatal("runPca: need at least two observations and one feature");

    Matrix x = standardize ? data.standardized() : data;
    Matrix cov = x.covariance();
    EigenResult eig = jacobiEigen(cov);

    PcaResult res;
    res.eigenvalues = eig.values;
    res.components = eig.vectors;

    double total = 0.0;
    for (double v : eig.values)
        total += v > 0.0 ? v : 0.0;
    res.explained.resize(eig.values.size(), 0.0);
    for (size_t i = 0; i < eig.values.size(); ++i) {
        double v = eig.values[i] > 0.0 ? eig.values[i] : 0.0;
        res.explained[i] = total > 0.0 ? v / total : 0.0;
    }

    res.scores = x.multiply(res.components);
    return res;
}

Matrix
pcaProject(const PcaResult &pca, size_t k)
{
    if (k > pca.scores.cols())
        k = pca.scores.cols();
    Matrix out(pca.scores.rows(), k);
    for (size_t r = 0; r < out.rows(); ++r)
        for (size_t c = 0; c < k; ++c)
            out.at(r, c) = pca.scores.at(r, c);
    return out;
}

} // namespace stats
} // namespace rodinia
