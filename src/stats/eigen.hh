/**
 * @file
 * Symmetric eigendecomposition via the cyclic Jacobi method.
 *
 * PCA on the workload feature matrices only ever needs the spectrum
 * of a small symmetric covariance matrix, for which Jacobi rotation
 * is accurate, simple, and has no external dependencies.
 */

#ifndef RODINIA_STATS_EIGEN_HH
#define RODINIA_STATS_EIGEN_HH

#include <vector>

#include "stats/matrix.hh"

namespace rodinia {
namespace stats {

/** Result of a symmetric eigendecomposition, sorted descending. */
struct EigenResult
{
    /** Eigenvalues sorted from largest to smallest. */
    std::vector<double> values;
    /** Column i of this matrix is the eigenvector for values[i]. */
    Matrix vectors;
};

/**
 * Decompose a symmetric matrix with cyclic Jacobi rotations.
 *
 * @param m symmetric square input matrix
 * @param max_sweeps upper bound on full Jacobi sweeps
 * @return eigenvalues (descending) and matching eigenvectors
 */
EigenResult jacobiEigen(const Matrix &m, int max_sweeps = 64);

} // namespace stats
} // namespace rodinia

#endif // RODINIA_STATS_EIGEN_HH
