#include "stats/eigen.hh"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "support/logging.hh"

namespace rodinia {
namespace stats {

EigenResult
jacobiEigen(const Matrix &m, int max_sweeps)
{
    if (m.rows() != m.cols())
        panic("jacobiEigen: matrix is not square");
    const size_t n = m.rows();

    Matrix a = m;
    Matrix v(n, n);
    for (size_t i = 0; i < n; ++i)
        v.at(i, i) = 1.0;

    for (int sweep = 0; sweep < max_sweeps; ++sweep) {
        double off = 0.0;
        for (size_t p = 0; p < n; ++p)
            for (size_t q = p + 1; q < n; ++q)
                off += a.at(p, q) * a.at(p, q);
        if (off < 1e-24)
            break;

        for (size_t p = 0; p < n; ++p) {
            for (size_t q = p + 1; q < n; ++q) {
                double apq = a.at(p, q);
                if (std::fabs(apq) < 1e-300)
                    continue;
                double app = a.at(p, p);
                double aqq = a.at(q, q);
                double tau = (aqq - app) / (2.0 * apq);
                double t = (tau >= 0.0 ? 1.0 : -1.0) /
                           (std::fabs(tau) + std::sqrt(1.0 + tau * tau));
                double c = 1.0 / std::sqrt(1.0 + t * t);
                double s = t * c;

                for (size_t k = 0; k < n; ++k) {
                    double akp = a.at(k, p);
                    double akq = a.at(k, q);
                    a.at(k, p) = c * akp - s * akq;
                    a.at(k, q) = s * akp + c * akq;
                }
                for (size_t k = 0; k < n; ++k) {
                    double apk = a.at(p, k);
                    double aqk = a.at(q, k);
                    a.at(p, k) = c * apk - s * aqk;
                    a.at(q, k) = s * apk + c * aqk;
                }
                for (size_t k = 0; k < n; ++k) {
                    double vkp = v.at(k, p);
                    double vkq = v.at(k, q);
                    v.at(k, p) = c * vkp - s * vkq;
                    v.at(k, q) = s * vkp + c * vkq;
                }
            }
        }
    }

    std::vector<size_t> order(n);
    std::iota(order.begin(), order.end(), size_t(0));
    std::sort(order.begin(), order.end(), [&](size_t x, size_t y) {
        return a.at(x, x) > a.at(y, y);
    });

    EigenResult res;
    res.values.resize(n);
    res.vectors = Matrix(n, n);
    for (size_t i = 0; i < n; ++i) {
        res.values[i] = a.at(order[i], order[i]);
        for (size_t k = 0; k < n; ++k)
            res.vectors.at(k, i) = v.at(k, order[i]);
    }
    return res;
}

} // namespace stats
} // namespace rodinia
