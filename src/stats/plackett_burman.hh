/**
 * @file
 * Plackett-Burman two-level screening designs (Section III-E).
 *
 * The paper follows Yi et al. [36]: with n architectural parameters,
 * a PB design needs only ~2n simulations to rank single-parameter
 * effects. We implement the standard cyclic constructions for 8-, 12-,
 * 16-, 20- and 24-run designs, plus effect estimation and ranking.
 */

#ifndef RODINIA_STATS_PLACKETT_BURMAN_HH
#define RODINIA_STATS_PLACKETT_BURMAN_HH

#include <string>
#include <vector>

namespace rodinia {
namespace stats {

/** A two-level screening design: runs x factors of +/-1 levels. */
struct PbDesign
{
    int runs = 0;
    int factors = 0;
    /** signs[r][f] is +1 (high level) or -1 (low level). */
    std::vector<std::vector<int>> signs;
};

/**
 * Build a Plackett-Burman design with enough runs for `factors`
 * factors (the next multiple-of-4 run count above `factors`).
 * Supported run counts: 8, 12, 16, 20, 24.
 */
PbDesign pbDesign(int factors);

/** One factor's estimated main effect, for ranking. */
struct PbEffect
{
    int factor;
    std::string name;
    double effect;   //!< signed main effect
    double magnitude; //!< |effect|
};

/**
 * Estimate main effects from per-run responses and rank them by
 * magnitude (largest first).
 *
 * @param design the PB design that produced the responses
 * @param responses one response value per design run
 * @param names optional factor names (defaults to "f0", "f1", ...)
 */
std::vector<PbEffect> pbEffects(const PbDesign &design,
                                const std::vector<double> &responses,
                                const std::vector<std::string> &names = {});

} // namespace stats
} // namespace rodinia

#endif // RODINIA_STATS_PLACKETT_BURMAN_HH
