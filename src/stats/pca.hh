/**
 * @file
 * Principal component analysis over workload feature matrices.
 *
 * Mirrors the paper's methodology (Section IV-C): features are
 * z-score standardized, the covariance spectrum gives orthogonal
 * principal components, and workloads are projected onto the leading
 * components for the scatter plots of Figures 7-9 and the clustering
 * of Figure 6.
 */

#ifndef RODINIA_STATS_PCA_HH
#define RODINIA_STATS_PCA_HH

#include <cstddef>
#include <vector>

#include "stats/matrix.hh"

namespace rodinia {
namespace stats {

/** Output of a principal component analysis. */
struct PcaResult
{
    /** Eigenvalues of the covariance matrix, descending. */
    std::vector<double> eigenvalues;
    /** Fraction of total variance captured by each component. */
    std::vector<double> explained;
    /** Loadings: features x components; column i is component i. */
    Matrix components;
    /** Scores: observations x components (projected data). */
    Matrix scores;

    /** Number of leading components covering at least `fraction`. */
    size_t componentsForVariance(double fraction) const;
};

/**
 * Run PCA on an observations-by-features matrix.
 *
 * @param data raw (unstandardized) feature matrix
 * @param standardize z-score each feature column first (the paper
 *        standardizes, since its features mix rates and counts)
 */
PcaResult runPca(const Matrix &data, bool standardize = true);

/**
 * Project observations onto the first `k` principal components,
 * returning an observations-by-k score matrix.
 */
Matrix pcaProject(const PcaResult &pca, size_t k);

} // namespace stats
} // namespace rodinia

#endif // RODINIA_STATS_PCA_HH
