#include "stats/plackett_burman.hh"

#include <algorithm>
#include <cmath>

#include "support/logging.hh"

namespace rodinia {
namespace stats {

namespace {

/** First rows of the standard cyclic PB constructions. */
const char *
firstRow(int runs)
{
    switch (runs) {
      case 8:
        return "+++-+--";
      case 12:
        return "++-+++---+-";
      case 16:
        return "++++-+-++--+---";
      case 20:
        return "++--++++-+-+----++-";
      case 24:
        return "+++++-+-++--++--+-+----";
      default:
        return nullptr;
    }
}

} // namespace

PbDesign
pbDesign(int factors)
{
    if (factors < 1)
        fatal("pbDesign: need at least one factor");

    int runs = 0;
    for (int r : {8, 12, 16, 20, 24}) {
        if (factors <= r - 1) {
            runs = r;
            break;
        }
    }
    if (runs == 0)
        fatal("pbDesign: at most 23 factors supported, got ", factors);

    const char *row = firstRow(runs);
    const int cols = runs - 1;

    PbDesign d;
    d.runs = runs;
    d.factors = factors;
    d.signs.assign(runs, std::vector<int>(factors, -1));

    // Cyclic construction: row r is the first row rotated right r
    // times; the final run is all -1.
    for (int r = 0; r < runs - 1; ++r) {
        for (int f = 0; f < factors; ++f) {
            int idx = (f - r) % cols;
            if (idx < 0)
                idx += cols;
            d.signs[r][f] = row[idx] == '+' ? 1 : -1;
        }
    }
    return d;
}

std::vector<PbEffect>
pbEffects(const PbDesign &design, const std::vector<double> &responses,
          const std::vector<std::string> &names)
{
    if (int(responses.size()) != design.runs)
        fatal("pbEffects: expected ", design.runs, " responses, got ",
              responses.size());

    std::vector<PbEffect> out;
    for (int f = 0; f < design.factors; ++f) {
        double acc = 0.0;
        for (int r = 0; r < design.runs; ++r)
            acc += design.signs[r][f] * responses[r];
        double effect = acc / (design.runs / 2.0);
        PbEffect e;
        e.factor = f;
        e.name = f < int(names.size()) ? names[f] : "f" + std::to_string(f);
        e.effect = effect;
        e.magnitude = std::fabs(effect);
        out.push_back(e);
    }
    std::sort(out.begin(), out.end(), [](const PbEffect &a,
                                         const PbEffect &b) {
        return a.magnitude > b.magnitude;
    });
    return out;
}

} // namespace stats
} // namespace rodinia
