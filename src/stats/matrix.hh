/**
 * @file
 * Minimal dense-matrix support for the statistics substrate.
 *
 * The characterization pipeline only needs small matrices (tens of
 * workloads by tens of features), so this is a straightforward
 * row-major container with the handful of operations PCA and
 * clustering require.
 */

#ifndef RODINIA_STATS_MATRIX_HH
#define RODINIA_STATS_MATRIX_HH

#include <cstddef>
#include <vector>

namespace rodinia {
namespace stats {

/** Dense row-major matrix of doubles. */
class Matrix
{
  public:
    Matrix() = default;

    /** Construct a rows-by-cols matrix of zeros. */
    Matrix(size_t rows, size_t cols);

    /** Construct from nested initializer data (rows of equal width). */
    static Matrix fromRows(const std::vector<std::vector<double>> &rows);

    size_t rows() const { return nRows; }
    size_t cols() const { return nCols; }

    double &at(size_t r, size_t c) { return elems[r * nCols + c]; }
    double at(size_t r, size_t c) const { return elems[r * nCols + c]; }

    /** One row as a vector copy. */
    std::vector<double> row(size_t r) const;

    /** One column as a vector copy. */
    std::vector<double> col(size_t c) const;

    /** Matrix transpose. */
    Matrix transposed() const;

    /** Matrix product this * rhs. Dimensions must agree. */
    Matrix multiply(const Matrix &rhs) const;

    /** Per-column means. */
    std::vector<double> colMeans() const;

    /** Per-column sample standard deviations (divide by n - 1). */
    std::vector<double> colStddevs() const;

    /**
     * Return a copy with each column shifted to zero mean and scaled
     * to unit variance. Constant columns are left at zero (rather
     * than dividing by zero) since they carry no information.
     */
    Matrix standardized() const;

    /** Sample covariance matrix of the columns (cols x cols). */
    Matrix covariance() const;

  private:
    size_t nRows = 0;
    size_t nCols = 0;
    std::vector<double> elems;
};

} // namespace stats
} // namespace rodinia

#endif // RODINIA_STATS_MATRIX_HH
