/**
 * @file
 * Agglomerative hierarchical clustering and ASCII dendrograms.
 *
 * Implements the classical bottom-up clustering the paper uses via
 * the MATLAB statistics toolbox: pairwise Euclidean distances between
 * workload feature vectors, merged with a chosen linkage rule, and a
 * dendrogram rendering equivalent to Figure 6.
 */

#ifndef RODINIA_STATS_CLUSTER_HH
#define RODINIA_STATS_CLUSTER_HH

#include <string>
#include <vector>

#include "stats/matrix.hh"

namespace rodinia {
namespace stats {

/** Cluster-merge rule (Lance-Williams family). */
enum class LinkageMethod { Single, Complete, Average };

/**
 * One merge step: clusters `a` and `b` joined at `dist`.
 *
 * Cluster ids follow the scipy convention: leaves are 0..n-1, and the
 * cluster produced by merge step i has id n + i.
 */
struct Merge
{
    int a;
    int b;
    double dist;
};

/** A full hierarchical clustering of n leaves (n - 1 merges). */
struct Linkage
{
    int nLeaves = 0;
    std::vector<Merge> merges;

    /** Leaf indices in dendrogram display order. */
    std::vector<int> leafOrder() const;

    /**
     * Flat clustering with exactly k clusters (undo the last k - 1
     * merges). Returns a leaf-indexed cluster-label vector with
     * labels in 0..k-1.
     */
    std::vector<int> cut(int k) const;

    /** Cophenetic (merge) distance between two leaves. */
    double copheneticDistance(int leaf_a, int leaf_b) const;
};

/** Pairwise Euclidean distance matrix between the rows of `points`. */
Matrix pairwiseEuclidean(const Matrix &points);

/**
 * Agglomerative clustering of the rows of `points`.
 *
 * @param points observations-by-features matrix
 * @param method linkage rule for cluster-cluster distance
 */
Linkage hierarchicalCluster(const Matrix &points,
                            LinkageMethod method = LinkageMethod::Average);

/** Agglomerative clustering from a precomputed distance matrix. */
Linkage hierarchicalClusterFromDistances(const Matrix &dist,
                                         LinkageMethod method);

/**
 * Render a horizontal ASCII dendrogram (labels on the left, linkage
 * distance increasing to the right), visually analogous to Fig. 6.
 *
 * @param linkage merge tree
 * @param labels one label per leaf
 * @param width number of character columns used for the distance axis
 */
std::string renderDendrogram(const Linkage &linkage,
                             const std::vector<std::string> &labels,
                             int width = 56);

} // namespace stats
} // namespace rodinia

#endif // RODINIA_STATS_CLUSTER_HH
