# Empty dependencies file for bench_table3_incremental.
# This may be replaced when dependencies are built.
