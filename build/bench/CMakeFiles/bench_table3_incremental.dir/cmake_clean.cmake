file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_incremental.dir/bench_table3_incremental.cc.o"
  "CMakeFiles/bench_table3_incremental.dir/bench_table3_incremental.cc.o.d"
  "bench_table3_incremental"
  "bench_table3_incremental.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_incremental.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
