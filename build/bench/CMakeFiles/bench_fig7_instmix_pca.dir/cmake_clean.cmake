file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_instmix_pca.dir/bench_fig7_instmix_pca.cc.o"
  "CMakeFiles/bench_fig7_instmix_pca.dir/bench_fig7_instmix_pca.cc.o.d"
  "bench_fig7_instmix_pca"
  "bench_fig7_instmix_pca.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_instmix_pca.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
