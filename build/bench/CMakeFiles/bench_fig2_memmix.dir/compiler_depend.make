# Empty compiler generated dependencies file for bench_fig2_memmix.
# This may be replaced when dependencies are built.
