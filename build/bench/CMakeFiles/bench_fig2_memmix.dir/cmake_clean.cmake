file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_memmix.dir/bench_fig2_memmix.cc.o"
  "CMakeFiles/bench_fig2_memmix.dir/bench_fig2_memmix.cc.o.d"
  "bench_fig2_memmix"
  "bench_fig2_memmix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_memmix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
