# Empty compiler generated dependencies file for bench_pb_sensitivity.
# This may be replaced when dependencies are built.
