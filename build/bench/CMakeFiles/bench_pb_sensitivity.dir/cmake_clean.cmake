file(REMOVE_RECURSE
  "CMakeFiles/bench_pb_sensitivity.dir/bench_pb_sensitivity.cc.o"
  "CMakeFiles/bench_pb_sensitivity.dir/bench_pb_sensitivity.cc.o.d"
  "bench_pb_sensitivity"
  "bench_pb_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pb_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
