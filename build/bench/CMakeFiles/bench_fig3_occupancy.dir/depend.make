# Empty dependencies file for bench_fig3_occupancy.
# This may be replaced when dependencies are built.
