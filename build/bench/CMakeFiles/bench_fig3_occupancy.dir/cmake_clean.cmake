file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_occupancy.dir/bench_fig3_occupancy.cc.o"
  "CMakeFiles/bench_fig3_occupancy.dir/bench_fig3_occupancy.cc.o.d"
  "bench_fig3_occupancy"
  "bench_fig3_occupancy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_occupancy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
