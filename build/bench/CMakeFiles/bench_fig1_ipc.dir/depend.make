# Empty dependencies file for bench_fig1_ipc.
# This may be replaced when dependencies are built.
