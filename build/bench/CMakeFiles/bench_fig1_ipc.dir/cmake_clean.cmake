file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_ipc.dir/bench_fig1_ipc.cc.o"
  "CMakeFiles/bench_fig1_ipc.dir/bench_fig1_ipc.cc.o.d"
  "bench_fig1_ipc"
  "bench_fig1_ipc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_ipc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
