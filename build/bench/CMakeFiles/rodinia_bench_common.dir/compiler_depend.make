# Empty compiler generated dependencies file for rodinia_bench_common.
# This may be replaced when dependencies are built.
