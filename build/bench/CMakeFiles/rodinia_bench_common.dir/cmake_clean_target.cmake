file(REMOVE_RECURSE
  "librodinia_bench_common.a"
)
