file(REMOVE_RECURSE
  "CMakeFiles/rodinia_bench_common.dir/common.cc.o"
  "CMakeFiles/rodinia_bench_common.dir/common.cc.o.d"
  "librodinia_bench_common.a"
  "librodinia_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rodinia_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
