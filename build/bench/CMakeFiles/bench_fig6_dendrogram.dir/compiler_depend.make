# Empty compiler generated dependencies file for bench_fig6_dendrogram.
# This may be replaced when dependencies are built.
