file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_fermi.dir/bench_fig5_fermi.cc.o"
  "CMakeFiles/bench_fig5_fermi.dir/bench_fig5_fermi.cc.o.d"
  "bench_fig5_fermi"
  "bench_fig5_fermi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_fermi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
