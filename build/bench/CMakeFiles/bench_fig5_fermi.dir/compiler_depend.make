# Empty compiler generated dependencies file for bench_fig5_fermi.
# This may be replaced when dependencies are built.
