# Empty dependencies file for bench_fig8_workingset_pca.
# This may be replaced when dependencies are built.
