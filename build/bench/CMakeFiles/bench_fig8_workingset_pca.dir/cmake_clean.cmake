file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_workingset_pca.dir/bench_fig8_workingset_pca.cc.o"
  "CMakeFiles/bench_fig8_workingset_pca.dir/bench_fig8_workingset_pca.cc.o.d"
  "bench_fig8_workingset_pca"
  "bench_fig8_workingset_pca.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_workingset_pca.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
