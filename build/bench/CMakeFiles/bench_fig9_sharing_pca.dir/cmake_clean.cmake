file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_sharing_pca.dir/bench_fig9_sharing_pca.cc.o"
  "CMakeFiles/bench_fig9_sharing_pca.dir/bench_fig9_sharing_pca.cc.o.d"
  "bench_fig9_sharing_pca"
  "bench_fig9_sharing_pca.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_sharing_pca.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
