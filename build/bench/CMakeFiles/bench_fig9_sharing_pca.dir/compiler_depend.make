# Empty compiler generated dependencies file for bench_fig9_sharing_pca.
# This may be replaced when dependencies are built.
