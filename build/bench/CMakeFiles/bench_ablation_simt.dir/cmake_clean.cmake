file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_simt.dir/bench_ablation_simt.cc.o"
  "CMakeFiles/bench_ablation_simt.dir/bench_ablation_simt.cc.o.d"
  "bench_ablation_simt"
  "bench_ablation_simt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_simt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
