# Empty dependencies file for bench_ablation_simt.
# This may be replaced when dependencies are built.
