file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_dfootprint.dir/bench_fig12_dfootprint.cc.o"
  "CMakeFiles/bench_fig12_dfootprint.dir/bench_fig12_dfootprint.cc.o.d"
  "bench_fig12_dfootprint"
  "bench_fig12_dfootprint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_dfootprint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
