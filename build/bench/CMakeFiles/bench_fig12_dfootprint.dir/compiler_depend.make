# Empty compiler generated dependencies file for bench_fig12_dfootprint.
# This may be replaced when dependencies are built.
