# Empty compiler generated dependencies file for bench_fig4_channels.
# This may be replaced when dependencies are built.
