
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig4_channels.cc" "bench/CMakeFiles/bench_fig4_channels.dir/bench_fig4_channels.cc.o" "gcc" "bench/CMakeFiles/bench_fig4_channels.dir/bench_fig4_channels.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/rodinia_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/rodinia_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/rodinia_core_lib.dir/DependInfo.cmake"
  "/root/repo/build/src/gpusim/CMakeFiles/rodinia_gpusim.dir/DependInfo.cmake"
  "/root/repo/build/src/cachesim/CMakeFiles/rodinia_cachesim.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/rodinia_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/rodinia_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/rodinia_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
