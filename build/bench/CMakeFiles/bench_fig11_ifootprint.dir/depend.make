# Empty dependencies file for bench_fig11_ifootprint.
# This may be replaced when dependencies are built.
