file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_ifootprint.dir/bench_fig11_ifootprint.cc.o"
  "CMakeFiles/bench_fig11_ifootprint.dir/bench_fig11_ifootprint.cc.o.d"
  "bench_fig11_ifootprint"
  "bench_fig11_ifootprint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_ifootprint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
