# Empty dependencies file for bench_fig10_missrates.
# This may be replaced when dependencies are built.
