file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_missrates.dir/bench_fig10_missrates.cc.o"
  "CMakeFiles/bench_fig10_missrates.dir/bench_fig10_missrates.cc.o.d"
  "bench_fig10_missrates"
  "bench_fig10_missrates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_missrates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
