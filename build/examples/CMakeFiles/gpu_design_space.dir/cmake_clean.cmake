file(REMOVE_RECURSE
  "CMakeFiles/gpu_design_space.dir/gpu_design_space.cpp.o"
  "CMakeFiles/gpu_design_space.dir/gpu_design_space.cpp.o.d"
  "gpu_design_space"
  "gpu_design_space.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpu_design_space.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
