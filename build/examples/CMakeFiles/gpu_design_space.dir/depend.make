# Empty dependencies file for gpu_design_space.
# This may be replaced when dependencies are built.
