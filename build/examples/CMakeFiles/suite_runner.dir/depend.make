# Empty dependencies file for suite_runner.
# This may be replaced when dependencies are built.
