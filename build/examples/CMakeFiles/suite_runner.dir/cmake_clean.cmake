file(REMOVE_RECURSE
  "CMakeFiles/suite_runner.dir/suite_runner.cpp.o"
  "CMakeFiles/suite_runner.dir/suite_runner.cpp.o.d"
  "suite_runner"
  "suite_runner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/suite_runner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
