# Empty dependencies file for suite_comparison.
# This may be replaced when dependencies are built.
