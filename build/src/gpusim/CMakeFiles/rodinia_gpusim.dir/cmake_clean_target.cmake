file(REMOVE_RECURSE
  "librodinia_gpusim.a"
)
