# Empty compiler generated dependencies file for rodinia_gpusim.
# This may be replaced when dependencies are built.
