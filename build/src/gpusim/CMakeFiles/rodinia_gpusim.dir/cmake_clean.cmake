file(REMOVE_RECURSE
  "CMakeFiles/rodinia_gpusim.dir/recorder.cc.o"
  "CMakeFiles/rodinia_gpusim.dir/recorder.cc.o.d"
  "CMakeFiles/rodinia_gpusim.dir/replay.cc.o"
  "CMakeFiles/rodinia_gpusim.dir/replay.cc.o.d"
  "CMakeFiles/rodinia_gpusim.dir/simconfig.cc.o"
  "CMakeFiles/rodinia_gpusim.dir/simconfig.cc.o.d"
  "CMakeFiles/rodinia_gpusim.dir/simplecache.cc.o"
  "CMakeFiles/rodinia_gpusim.dir/simplecache.cc.o.d"
  "CMakeFiles/rodinia_gpusim.dir/timing.cc.o"
  "CMakeFiles/rodinia_gpusim.dir/timing.cc.o.d"
  "librodinia_gpusim.a"
  "librodinia_gpusim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rodinia_gpusim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
