
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gpusim/recorder.cc" "src/gpusim/CMakeFiles/rodinia_gpusim.dir/recorder.cc.o" "gcc" "src/gpusim/CMakeFiles/rodinia_gpusim.dir/recorder.cc.o.d"
  "/root/repo/src/gpusim/replay.cc" "src/gpusim/CMakeFiles/rodinia_gpusim.dir/replay.cc.o" "gcc" "src/gpusim/CMakeFiles/rodinia_gpusim.dir/replay.cc.o.d"
  "/root/repo/src/gpusim/simconfig.cc" "src/gpusim/CMakeFiles/rodinia_gpusim.dir/simconfig.cc.o" "gcc" "src/gpusim/CMakeFiles/rodinia_gpusim.dir/simconfig.cc.o.d"
  "/root/repo/src/gpusim/simplecache.cc" "src/gpusim/CMakeFiles/rodinia_gpusim.dir/simplecache.cc.o" "gcc" "src/gpusim/CMakeFiles/rodinia_gpusim.dir/simplecache.cc.o.d"
  "/root/repo/src/gpusim/timing.cc" "src/gpusim/CMakeFiles/rodinia_gpusim.dir/timing.cc.o" "gcc" "src/gpusim/CMakeFiles/rodinia_gpusim.dir/timing.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/rodinia_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
