file(REMOVE_RECURSE
  "librodinia_support.a"
)
