# Empty compiler generated dependencies file for rodinia_support.
# This may be replaced when dependencies are built.
