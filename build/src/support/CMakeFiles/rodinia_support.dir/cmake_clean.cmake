file(REMOVE_RECURSE
  "CMakeFiles/rodinia_support.dir/logging.cc.o"
  "CMakeFiles/rodinia_support.dir/logging.cc.o.d"
  "CMakeFiles/rodinia_support.dir/table.cc.o"
  "CMakeFiles/rodinia_support.dir/table.cc.o.d"
  "librodinia_support.a"
  "librodinia_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rodinia_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
