file(REMOVE_RECURSE
  "librodinia_trace.a"
)
