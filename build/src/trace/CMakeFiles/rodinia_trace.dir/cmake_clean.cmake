file(REMOVE_RECURSE
  "CMakeFiles/rodinia_trace.dir/trace.cc.o"
  "CMakeFiles/rodinia_trace.dir/trace.cc.o.d"
  "librodinia_trace.a"
  "librodinia_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rodinia_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
