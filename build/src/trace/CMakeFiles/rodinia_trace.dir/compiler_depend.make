# Empty compiler generated dependencies file for rodinia_trace.
# This may be replaced when dependencies are built.
