file(REMOVE_RECURSE
  "librodinia_core_lib.a"
)
