file(REMOVE_RECURSE
  "CMakeFiles/rodinia_core_lib.dir/characterize.cc.o"
  "CMakeFiles/rodinia_core_lib.dir/characterize.cc.o.d"
  "CMakeFiles/rodinia_core_lib.dir/workload.cc.o"
  "CMakeFiles/rodinia_core_lib.dir/workload.cc.o.d"
  "librodinia_core_lib.a"
  "librodinia_core_lib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rodinia_core_lib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
