# Empty dependencies file for rodinia_core_lib.
# This may be replaced when dependencies are built.
