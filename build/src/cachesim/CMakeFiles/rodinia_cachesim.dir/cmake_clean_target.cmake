file(REMOVE_RECURSE
  "librodinia_cachesim.a"
)
