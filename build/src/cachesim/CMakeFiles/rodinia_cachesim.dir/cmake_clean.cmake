file(REMOVE_RECURSE
  "CMakeFiles/rodinia_cachesim.dir/cache.cc.o"
  "CMakeFiles/rodinia_cachesim.dir/cache.cc.o.d"
  "librodinia_cachesim.a"
  "librodinia_cachesim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rodinia_cachesim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
