# Empty dependencies file for rodinia_cachesim.
# This may be replaced when dependencies are built.
