# Empty dependencies file for rodinia_workloads.
# This may be replaced when dependencies are built.
