file(REMOVE_RECURSE
  "librodinia_workloads.a"
)
