
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/parsec/blackscholes.cc" "src/workloads/CMakeFiles/rodinia_workloads.dir/parsec/blackscholes.cc.o" "gcc" "src/workloads/CMakeFiles/rodinia_workloads.dir/parsec/blackscholes.cc.o.d"
  "/root/repo/src/workloads/parsec/bodytrack.cc" "src/workloads/CMakeFiles/rodinia_workloads.dir/parsec/bodytrack.cc.o" "gcc" "src/workloads/CMakeFiles/rodinia_workloads.dir/parsec/bodytrack.cc.o.d"
  "/root/repo/src/workloads/parsec/canneal.cc" "src/workloads/CMakeFiles/rodinia_workloads.dir/parsec/canneal.cc.o" "gcc" "src/workloads/CMakeFiles/rodinia_workloads.dir/parsec/canneal.cc.o.d"
  "/root/repo/src/workloads/parsec/dedup.cc" "src/workloads/CMakeFiles/rodinia_workloads.dir/parsec/dedup.cc.o" "gcc" "src/workloads/CMakeFiles/rodinia_workloads.dir/parsec/dedup.cc.o.d"
  "/root/repo/src/workloads/parsec/facesim.cc" "src/workloads/CMakeFiles/rodinia_workloads.dir/parsec/facesim.cc.o" "gcc" "src/workloads/CMakeFiles/rodinia_workloads.dir/parsec/facesim.cc.o.d"
  "/root/repo/src/workloads/parsec/ferret.cc" "src/workloads/CMakeFiles/rodinia_workloads.dir/parsec/ferret.cc.o" "gcc" "src/workloads/CMakeFiles/rodinia_workloads.dir/parsec/ferret.cc.o.d"
  "/root/repo/src/workloads/parsec/fluidanimate.cc" "src/workloads/CMakeFiles/rodinia_workloads.dir/parsec/fluidanimate.cc.o" "gcc" "src/workloads/CMakeFiles/rodinia_workloads.dir/parsec/fluidanimate.cc.o.d"
  "/root/repo/src/workloads/parsec/freqmine.cc" "src/workloads/CMakeFiles/rodinia_workloads.dir/parsec/freqmine.cc.o" "gcc" "src/workloads/CMakeFiles/rodinia_workloads.dir/parsec/freqmine.cc.o.d"
  "/root/repo/src/workloads/parsec/raytrace.cc" "src/workloads/CMakeFiles/rodinia_workloads.dir/parsec/raytrace.cc.o" "gcc" "src/workloads/CMakeFiles/rodinia_workloads.dir/parsec/raytrace.cc.o.d"
  "/root/repo/src/workloads/parsec/swaptions.cc" "src/workloads/CMakeFiles/rodinia_workloads.dir/parsec/swaptions.cc.o" "gcc" "src/workloads/CMakeFiles/rodinia_workloads.dir/parsec/swaptions.cc.o.d"
  "/root/repo/src/workloads/parsec/vips.cc" "src/workloads/CMakeFiles/rodinia_workloads.dir/parsec/vips.cc.o" "gcc" "src/workloads/CMakeFiles/rodinia_workloads.dir/parsec/vips.cc.o.d"
  "/root/repo/src/workloads/parsec/x264.cc" "src/workloads/CMakeFiles/rodinia_workloads.dir/parsec/x264.cc.o" "gcc" "src/workloads/CMakeFiles/rodinia_workloads.dir/parsec/x264.cc.o.d"
  "/root/repo/src/workloads/register_all.cc" "src/workloads/CMakeFiles/rodinia_workloads.dir/register_all.cc.o" "gcc" "src/workloads/CMakeFiles/rodinia_workloads.dir/register_all.cc.o.d"
  "/root/repo/src/workloads/rodinia/backprop.cc" "src/workloads/CMakeFiles/rodinia_workloads.dir/rodinia/backprop.cc.o" "gcc" "src/workloads/CMakeFiles/rodinia_workloads.dir/rodinia/backprop.cc.o.d"
  "/root/repo/src/workloads/rodinia/bfs.cc" "src/workloads/CMakeFiles/rodinia_workloads.dir/rodinia/bfs.cc.o" "gcc" "src/workloads/CMakeFiles/rodinia_workloads.dir/rodinia/bfs.cc.o.d"
  "/root/repo/src/workloads/rodinia/cfd.cc" "src/workloads/CMakeFiles/rodinia_workloads.dir/rodinia/cfd.cc.o" "gcc" "src/workloads/CMakeFiles/rodinia_workloads.dir/rodinia/cfd.cc.o.d"
  "/root/repo/src/workloads/rodinia/heartwall.cc" "src/workloads/CMakeFiles/rodinia_workloads.dir/rodinia/heartwall.cc.o" "gcc" "src/workloads/CMakeFiles/rodinia_workloads.dir/rodinia/heartwall.cc.o.d"
  "/root/repo/src/workloads/rodinia/hotspot.cc" "src/workloads/CMakeFiles/rodinia_workloads.dir/rodinia/hotspot.cc.o" "gcc" "src/workloads/CMakeFiles/rodinia_workloads.dir/rodinia/hotspot.cc.o.d"
  "/root/repo/src/workloads/rodinia/kmeans.cc" "src/workloads/CMakeFiles/rodinia_workloads.dir/rodinia/kmeans.cc.o" "gcc" "src/workloads/CMakeFiles/rodinia_workloads.dir/rodinia/kmeans.cc.o.d"
  "/root/repo/src/workloads/rodinia/leukocyte.cc" "src/workloads/CMakeFiles/rodinia_workloads.dir/rodinia/leukocyte.cc.o" "gcc" "src/workloads/CMakeFiles/rodinia_workloads.dir/rodinia/leukocyte.cc.o.d"
  "/root/repo/src/workloads/rodinia/lud.cc" "src/workloads/CMakeFiles/rodinia_workloads.dir/rodinia/lud.cc.o" "gcc" "src/workloads/CMakeFiles/rodinia_workloads.dir/rodinia/lud.cc.o.d"
  "/root/repo/src/workloads/rodinia/mummer.cc" "src/workloads/CMakeFiles/rodinia_workloads.dir/rodinia/mummer.cc.o" "gcc" "src/workloads/CMakeFiles/rodinia_workloads.dir/rodinia/mummer.cc.o.d"
  "/root/repo/src/workloads/rodinia/nw.cc" "src/workloads/CMakeFiles/rodinia_workloads.dir/rodinia/nw.cc.o" "gcc" "src/workloads/CMakeFiles/rodinia_workloads.dir/rodinia/nw.cc.o.d"
  "/root/repo/src/workloads/rodinia/srad.cc" "src/workloads/CMakeFiles/rodinia_workloads.dir/rodinia/srad.cc.o" "gcc" "src/workloads/CMakeFiles/rodinia_workloads.dir/rodinia/srad.cc.o.d"
  "/root/repo/src/workloads/rodinia/streamcluster.cc" "src/workloads/CMakeFiles/rodinia_workloads.dir/rodinia/streamcluster.cc.o" "gcc" "src/workloads/CMakeFiles/rodinia_workloads.dir/rodinia/streamcluster.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/rodinia_core_lib.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/rodinia_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/gpusim/CMakeFiles/rodinia_gpusim.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/rodinia_support.dir/DependInfo.cmake"
  "/root/repo/build/src/cachesim/CMakeFiles/rodinia_cachesim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
