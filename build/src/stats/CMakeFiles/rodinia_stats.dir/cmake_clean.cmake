file(REMOVE_RECURSE
  "CMakeFiles/rodinia_stats.dir/cluster.cc.o"
  "CMakeFiles/rodinia_stats.dir/cluster.cc.o.d"
  "CMakeFiles/rodinia_stats.dir/eigen.cc.o"
  "CMakeFiles/rodinia_stats.dir/eigen.cc.o.d"
  "CMakeFiles/rodinia_stats.dir/matrix.cc.o"
  "CMakeFiles/rodinia_stats.dir/matrix.cc.o.d"
  "CMakeFiles/rodinia_stats.dir/pca.cc.o"
  "CMakeFiles/rodinia_stats.dir/pca.cc.o.d"
  "CMakeFiles/rodinia_stats.dir/plackett_burman.cc.o"
  "CMakeFiles/rodinia_stats.dir/plackett_burman.cc.o.d"
  "librodinia_stats.a"
  "librodinia_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rodinia_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
