# Empty compiler generated dependencies file for rodinia_stats.
# This may be replaced when dependencies are built.
