
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/cluster.cc" "src/stats/CMakeFiles/rodinia_stats.dir/cluster.cc.o" "gcc" "src/stats/CMakeFiles/rodinia_stats.dir/cluster.cc.o.d"
  "/root/repo/src/stats/eigen.cc" "src/stats/CMakeFiles/rodinia_stats.dir/eigen.cc.o" "gcc" "src/stats/CMakeFiles/rodinia_stats.dir/eigen.cc.o.d"
  "/root/repo/src/stats/matrix.cc" "src/stats/CMakeFiles/rodinia_stats.dir/matrix.cc.o" "gcc" "src/stats/CMakeFiles/rodinia_stats.dir/matrix.cc.o.d"
  "/root/repo/src/stats/pca.cc" "src/stats/CMakeFiles/rodinia_stats.dir/pca.cc.o" "gcc" "src/stats/CMakeFiles/rodinia_stats.dir/pca.cc.o.d"
  "/root/repo/src/stats/plackett_burman.cc" "src/stats/CMakeFiles/rodinia_stats.dir/plackett_burman.cc.o" "gcc" "src/stats/CMakeFiles/rodinia_stats.dir/plackett_burman.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/rodinia_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
