file(REMOVE_RECURSE
  "librodinia_stats.a"
)
