# Empty dependencies file for rodinia_stats.
# This may be replaced when dependencies are built.
