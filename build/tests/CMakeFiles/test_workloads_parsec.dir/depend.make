# Empty dependencies file for test_workloads_parsec.
# This may be replaced when dependencies are built.
