file(REMOVE_RECURSE
  "CMakeFiles/test_workloads_parsec.dir/test_workloads_parsec.cc.o"
  "CMakeFiles/test_workloads_parsec.dir/test_workloads_parsec.cc.o.d"
  "test_workloads_parsec"
  "test_workloads_parsec.pdb"
  "test_workloads_parsec[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_workloads_parsec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
