# Empty compiler generated dependencies file for test_workloads_rodinia.
# This may be replaced when dependencies are built.
