file(REMOVE_RECURSE
  "CMakeFiles/test_workloads_rodinia.dir/test_workloads_rodinia.cc.o"
  "CMakeFiles/test_workloads_rodinia.dir/test_workloads_rodinia.cc.o.d"
  "test_workloads_rodinia"
  "test_workloads_rodinia.pdb"
  "test_workloads_rodinia[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_workloads_rodinia.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
