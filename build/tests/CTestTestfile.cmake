# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_stats[1]_include.cmake")
include("/root/repo/build/tests/test_trace[1]_include.cmake")
include("/root/repo/build/tests/test_cachesim[1]_include.cmake")
include("/root/repo/build/tests/test_gpusim[1]_include.cmake")
include("/root/repo/build/tests/test_workloads_rodinia[1]_include.cmake")
include("/root/repo/build/tests/test_workloads_parsec[1]_include.cmake")
include("/root/repo/build/tests/test_characterize[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
