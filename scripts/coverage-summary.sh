#!/bin/sh
# Line-coverage summary from raw gcov, for toolchains without gcovr
# or lcov (the repo's minimal image ships only gcov). Invoked by the
# `coverage` target after ctest has produced .gcda files.
#
# Usage: coverage-summary.sh <source-root> <build-dir>
#
# Emits one "SF:<file> DA:<covered>/<instrumented>" line per source
# file under <source-root>/src plus an lcov-style total:
#
#   lines......: 87.3% (12345 of 14142 lines)
set -eu

src_root=${1:?usage: coverage-summary.sh <source-root> <build-dir>}
build_dir=${2:?usage: coverage-summary.sh <source-root> <build-dir>}

tmp=$(mktemp -d "${TMPDIR:-/tmp}/rodinia-cov.XXXXXX")
trap 'rm -rf "$tmp"' EXIT

# gcov -i emits machine-readable per-object summaries; run it from a
# scratch dir so .gcov droppings never land in the build tree.
find "$build_dir" -name '*.gcda' > "$tmp/gcda.list"
if ! [ -s "$tmp/gcda.list" ]; then
    echo "coverage-summary: no .gcda files under $build_dir" \
         "(build with -DRODINIA_COVERAGE=ON and run ctest first)" >&2
    exit 1
fi
(
    cd "$tmp"
    while IFS= read -r gcda; do
        gcov --json-format --stdout "$gcda" 2>/dev/null || true
    done < "$tmp/gcda.list"
) > "$tmp/gcov.json"

# Aggregate per-file covered/instrumented line counts. The stream is
# one JSON document per object file; a line counts as covered if any
# object reports an execution count > 0 for it (matching lcov's
# union semantics for headers compiled into several objects).
python3 - "$src_root" "$tmp/gcov.json" <<'PY'
import json, sys

src_root = sys.argv[1].rstrip("/") + "/"
covered = {}   # path -> set(lines hit)
seen = {}      # path -> set(instrumented lines)
dec = json.JSONDecoder()
text = open(sys.argv[2]).read()
pos = 0
while pos < len(text):
    while pos < len(text) and text[pos] not in "{[":
        pos += 1
    if pos >= len(text):
        break
    try:
        doc, end = dec.raw_decode(text, pos)
    except ValueError:
        pos += 1
        continue
    pos = end
    for f in doc.get("files", []):
        path = f.get("file", "")
        if not path.startswith(src_root + "src/"):
            continue
        rel = path[len(src_root):]
        for line in f.get("lines", []):
            n = line.get("line_number")
            seen.setdefault(rel, set()).add(n)
            if line.get("count", 0) > 0:
                covered.setdefault(rel, set()).add(n)

total_seen = total_hit = 0
for rel in sorted(seen):
    n_seen = len(seen[rel])
    n_hit = len(covered.get(rel, ()))
    total_seen += n_seen
    total_hit += n_hit
    print(f"SF:{rel} DA:{n_hit}/{n_seen}")
if total_seen == 0:
    print("coverage-summary: no lines under src/ were instrumented",
          file=sys.stderr)
    sys.exit(1)
pct = 100.0 * total_hit / total_seen
print(f"  lines......: {pct:.1f}% ({total_hit} of {total_seen} lines)")
PY
