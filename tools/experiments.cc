/**
 * @file
 * `experiments` — run the paper's figures as one parallel job graph.
 *
 * Where each bench binary reproduces a single figure serially, this
 * CLI builds a driver::JobGraph over every requested figure: one job
 * per CPU characterization (shared by Figs. 6-12), one per GPU
 * launch recording (shared by Figs. 1-5 / Table III / PB), and one
 * per figure assembly, wired with explicit dependencies and executed
 * on the work-stealing pool. Figure text is byte-identical to the
 * per-binary serial runs because both paths call the same
 * driver::FigureDef builders with deterministic slot-ordered
 * assembly.
 *
 * Usage:
 *   experiments [--figure <id>|all] [--scale S] [--jobs N] [--no-cache]
 *               [--cache-dir DIR] [--quiet] [--no-summary] [--list]
 *               [--stats] [--keep-going] [--deadline MS]
 *               [--trace FILE] [--metrics FILE]
 *
 * Failure behavior: job failures never abort the process — the
 * executor isolates them, retries transient classes, and skips
 * dependents. Without --keep-going a failed run suppresses figure
 * output entirely (all-or-nothing); with it, every completable
 * figure is emitted byte-identical to a clean run and failed ones
 * are rendered as deterministic MISSING(<error-class>) markers.
 * Either way the process exits non-zero with a per-job failure
 * summary on stderr. --deadline arms the executor watchdog with a
 * per-job soft deadline; RODINIA_FAULTS (support/faultinject.hh)
 * injects deterministic faults for testing.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <algorithm>
#include <cstring>
#include <sstream>
#include <thread>
#include <string>
#include <vector>

#include "driver/context.hh"
#include "driver/executor.hh"
#include "driver/failure.hh"
#include "driver/figures.hh"
#include "driver/job.hh"
#include "driver/result_store.hh"
#include "driver/tracing.hh"
#include "gpusim/simconfig.hh"
#include "support/hash.hh"
#include "support/metrics.hh"
#include "support/progress.hh"
#include "support/table.hh"

using namespace rodinia;

namespace {

struct Options
{
    std::vector<std::string> figures; //!< empty = all
    core::Scale scale = core::Scale::Full;
    int jobs = 0;                     //!< 0 = hardware concurrency
    int simThreads = 0;               //!< 0 = process default
    bool cache = true;
    // --cache-dir overrides; RODINIA_CACHE_DIR matches the bench
    // binaries' override so both share one store by default.
    std::string cacheDir = [] {
        const char *dir = std::getenv("RODINIA_CACHE_DIR");
        return std::string(dir && *dir ? dir : "bench_cache");
    }();
    bool quiet = false;
    bool summary = true;
    bool list = false;
    bool stats = false;
    bool keepGoing = false;
    double deadlineMs = 0.0;  //!< per-job soft deadline; 0 = off
    std::string traceOut;     //!< Chrome trace_event JSON path
    std::string metricsOut;   //!< metrics registry JSON path
};

void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [options]\n"
        "  --figure ID    figure to run (repeatable; comma lists ok;\n"
        "                 'all' or omitted = every figure; see --list)\n"
        "  --scale S      problem-size tier for the primary figures:\n"
        "                 tiny|small|full|paper (default full; paper\n"
        "                 streams Table I-scale traces)\n"
        "  --jobs N       worker threads (default: hardware threads)\n"
        "  --sim-threads N  threads per GPU timing simulation\n"
        "                 (default: RODINIA_SIM_THREADS or 1; the\n"
        "                 parallel engine is bit-identical to serial,\n"
        "                 so figures never depend on this)\n"
        "  --no-cache     bypass the on-disk result store\n"
        "  --cache-dir D  result store directory (default bench_cache)\n"
        "  --quiet        suppress per-job progress on stderr\n"
        "  --no-summary   suppress the job accounting table\n"
        "  --list         print figure ids and exit\n"
        "  --stats        print cache-sweep replay throughput, GPU\n"
        "                 timing-simulation telemetry, and\n"
        "                 result-store health after the figures\n"
        "  --keep-going   on job failure, still emit every\n"
        "                 completable figure and render failed ones\n"
        "                 as MISSING(<error-class>) markers\n"
        "  --deadline MS  soft per-job watchdog deadline in ms; an\n"
        "                 over-deadline job is cancelled\n"
        "                 cooperatively and fails as 'deadline'\n"
        "  --trace FILE   write a Chrome trace_event JSON span\n"
        "                 trace (executor, store, gpusim, cachesim,\n"
        "                 figure categories; load in chrome://tracing\n"
        "                 or ui.perfetto.dev)\n"
        "  --metrics FILE write the metrics registry as JSON\n"
        "                 (deterministic \"stable\" section, then\n"
        "                 wall-clock \"volatile\" section)\n",
        argv0);
}

bool
parseArgs(int argc, char **argv, Options &opt)
{
    auto value = [&](int &i) -> const char * {
        if (i + 1 >= argc) {
            std::fprintf(stderr, "%s needs a value\n", argv[i]);
            return nullptr;
        }
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (!std::strcmp(arg, "--figure")) {
            const char *v = value(i);
            if (!v)
                return false;
            std::stringstream ss(v);
            std::string id;
            while (std::getline(ss, id, ','))
                if (!id.empty())
                    opt.figures.push_back(id);
        } else if (!std::strcmp(arg, "--scale")) {
            const char *v = value(i);
            if (!v)
                return false;
            if (!std::strcmp(v, "tiny")) {
                opt.scale = core::Scale::Tiny;
            } else if (!std::strcmp(v, "small")) {
                opt.scale = core::Scale::Small;
            } else if (!std::strcmp(v, "full")) {
                opt.scale = core::Scale::Full;
            } else if (!std::strcmp(v, "paper")) {
                opt.scale = core::Scale::Paper;
            } else {
                std::fprintf(stderr,
                             "--scale: '%s' is not one of "
                             "tiny|small|full|paper\n",
                             v);
                return false;
            }
        } else if (!std::strcmp(arg, "--jobs")) {
            const char *v = value(i);
            if (!v)
                return false;
            // Strict parse: "4abc", "", or out-of-range values are
            // configuration mistakes, not requests for atoi's guess.
            char *end = nullptr;
            long n = std::strtol(v, &end, 10);
            if (end == v || *end != '\0' || n < 1 || n > 1024) {
                std::fprintf(stderr,
                             "--jobs: '%s' is not an integer in "
                             "[1, 1024]\n",
                             v);
                return false;
            }
            opt.jobs = int(n);
        } else if (!std::strcmp(arg, "--sim-threads")) {
            const char *v = value(i);
            if (!v)
                return false;
            char *end = nullptr;
            long n = std::strtol(v, &end, 10);
            if (end == v || *end != '\0' || n < 1 || n > 256) {
                std::fprintf(stderr,
                             "--sim-threads: '%s' is not an integer "
                             "in [1, 256]\n",
                             v);
                return false;
            }
            opt.simThreads = int(n);
        } else if (!std::strcmp(arg, "--no-cache")) {
            opt.cache = false;
        } else if (!std::strcmp(arg, "--cache-dir")) {
            const char *v = value(i);
            if (!v)
                return false;
            opt.cacheDir = v;
        } else if (!std::strcmp(arg, "--quiet")) {
            opt.quiet = true;
        } else if (!std::strcmp(arg, "--no-summary")) {
            opt.summary = false;
        } else if (!std::strcmp(arg, "--list")) {
            opt.list = true;
        } else if (!std::strcmp(arg, "--stats")) {
            opt.stats = true;
        } else if (!std::strcmp(arg, "--keep-going")) {
            opt.keepGoing = true;
        } else if (!std::strcmp(arg, "--deadline")) {
            const char *v = value(i);
            if (!v)
                return false;
            char *end = nullptr;
            long n = std::strtol(v, &end, 10);
            if (end == v || *end != '\0' || n < 1 ||
                n > 86400000L) {
                std::fprintf(stderr,
                             "--deadline: '%s' is not a millisecond "
                             "count in [1, 86400000]\n",
                             v);
                return false;
            }
            opt.deadlineMs = double(n);
        } else if (!std::strcmp(arg, "--trace")) {
            const char *v = value(i);
            if (!v)
                return false;
            opt.traceOut = v;
        } else if (!std::strcmp(arg, "--metrics")) {
            const char *v = value(i);
            if (!v)
                return false;
            opt.metricsOut = v;
        } else if (!std::strcmp(arg, "--help") ||
                   !std::strcmp(arg, "-h")) {
            usage(argv[0]);
            std::exit(0);
        } else {
            std::fprintf(stderr, "unknown option '%s'\n", arg);
            usage(argv[0]);
            return false;
        }
    }
    return true;
}

std::vector<const driver::FigureDef *>
selectFigures(const Options &opt, bool &ok)
{
    std::vector<const driver::FigureDef *> out;
    ok = true;
    bool all = opt.figures.empty();
    for (const auto &id : opt.figures) {
        if (id == "all") {
            all = true;
        } else if (!driver::findFigure(id)) {
            std::string valid;
            for (const auto &def : driver::allFigures())
                valid += (valid.empty() ? "" : " ") + def.id;
            std::fprintf(stderr,
                         "unknown figure '%s'; valid figures: all %s\n",
                         id.c_str(), valid.c_str());
            ok = false;
            return out;
        }
    }
    if (all) {
        for (const auto &def : driver::allFigures())
            out.push_back(&def);
        return out;
    }
    // Keep the user's requested order, dropping duplicates.
    for (const auto &id : opt.figures) {
        const auto *def = driver::findFigure(id);
        bool seen = false;
        for (const auto *d : out)
            seen = seen || d == def;
        if (!seen)
            out.push_back(def);
    }
    return out;
}

std::string
gpuJobName(const driver::GpuDep &dep)
{
    std::ostringstream os;
    os << "gpu:" << dep.workload << "/s" << int(dep.scale) << "/v"
       << dep.version;
    return os.str();
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    if (!parseArgs(argc, argv, opt))
        return 2;

    // Before any allFigures() call: the figure table embeds the
    // scale in its GPU dependency lists.
    driver::setPrimaryScale(opt.scale);

    if (opt.list) {
        for (const auto &def : driver::allFigures())
            std::printf("%-18s %s\n", def.id.c_str(),
                        def.title.c_str());
        return 0;
    }

    bool ok = false;
    auto figures = selectFigures(opt, ok);
    if (!ok)
        return 2;

    core::registerAllWorkloads();

    // The collector must be live before the store opens so the
    // orphan-GC span at open is captured.
    driver::TraceCollector trace;
    if (!opt.traceOut.empty())
        driver::TraceCollector::install(&trace);

    driver::ResultStore store(opt.cacheDir, opt.cache);
    // More workers than hardware threads only adds contention (the
    // jobs are CPU-bound, never blocking on I/O), and figure output
    // is byte-identical across worker counts by design, so clamping
    // is safe. Executor itself stays unclamped: tests deliberately
    // oversubscribe to exercise races.
    int hw = int(std::thread::hardware_concurrency());
    if (hw < 1)
        hw = 1;
    int jobs = opt.jobs <= 0 ? hw : std::min(opt.jobs, hw);
    // Per-sim parallelism composes with the job pool through the
    // process-wide thread budget (busy workers shrink what a sim may
    // claim), so an explicit request here cannot oversubscribe.
    if (opt.simThreads > 0)
        gpusim::SimConfig::setDefaultSimThreads(opt.simThreads);
    driver::Executor executor(jobs);
    driver::Context ctx(&store, &executor);

    driver::JobGraph graph;

    // Shared input jobs: one per CPU characterization, one per GPU
    // launch recording, deduplicated across figures.
    bool needsAllCpu = false;
    for (const auto *def : figures)
        needsAllCpu = needsAllCpu || def->needsAllCpu;

    std::vector<size_t> cpuJobs;
    if (needsAllCpu) {
        for (const auto &name : driver::allCpuWorkloads()) {
            cpuJobs.push_back(graph.add("cpu:" + name, [&ctx, name] {
                ctx.cpu(name, driver::primaryScale());
            }));
        }
    }

    std::vector<std::pair<std::string, size_t>> gpuJobs;
    auto gpuJobFor = [&](const driver::GpuDep &dep) {
        std::string jobName = gpuJobName(dep);
        for (const auto &[name, id] : gpuJobs)
            if (name == jobName)
                return id;
        size_t id = graph.add(jobName, [&ctx, dep] {
            ctx.gpu(dep.workload, dep.scale, dep.version);
        });
        gpuJobs.emplace_back(jobName, id);
        return id;
    };

    std::vector<std::string> outputs(figures.size());
    std::vector<size_t> figureJobIds(figures.size());
    for (size_t i = 0; i < figures.size(); ++i) {
        const auto *def = figures[i];
        std::vector<size_t> deps;
        if (def->needsAllCpu)
            deps = cpuJobs;
        for (const auto &dep : def->gpuDeps)
            deps.push_back(gpuJobFor(dep));
        figureJobIds[i] = graph.add(
            "figure:" + def->id,
            [&ctx, &outputs, i, def] {
                outputs[i] = driver::buildFigure(*def, ctx);
            },
            std::move(deps));
    }

    if (opt.deadlineMs > 0.0)
        for (auto &job : graph.jobs())
            job.softDeadlineMs = opt.deadlineMs;

    support::StreamProgressReporter progress(graph.size(), stderr,
                                             !opt.quiet);
    auto t0 = std::chrono::steady_clock::now();
    bool allOk = executor.run(graph, &progress);
    double wallMs = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - t0)
                        .count();

    // Figure text in requested order, independent of execution
    // schedule. A failed run degrades per --keep-going: completed
    // figures are emitted byte-identical to a clean run and failed
    // ones become deterministic MISSING markers (the marker text
    // depends only on the error class and message, never on timing).
    // Without --keep-going a failed run is all-or-nothing: figure
    // output is suppressed and the stderr summary explains why.
    if (allOk || opt.keepGoing) {
        for (size_t i = 0; i < figures.size(); ++i) {
            std::printf("===== %s =====\n\n",
                        figures[i]->title.c_str());
            const driver::Job &job = graph.job(figureJobIds[i]);
            if (job.status == driver::JobStatus::Done) {
                std::fputs(outputs[i].c_str(), stdout);
            } else {
                std::printf("MISSING(%s)\n",
                            driver::errorClassName(job.errorClass));
                std::printf("figure '%s' did not complete: %s\n",
                            figures[i]->id.c_str(),
                            job.error.c_str());
            }
            std::fputs("\n", stdout);
        }
    }

    if (opt.summary) {
        Table t("Job accounting");
        t.setHeader({"Job", "Status", "Class", "Attempts",
                     "Wall (ms)"});
        for (const auto &job : graph.jobs())
            t.addRow({job.name, driver::jobStatusName(job.status),
                      driver::errorClassName(job.errorClass),
                      std::to_string(job.attempts),
                      Table::fmt(job.wallMs, 1)});
        std::fputs(t.render().c_str(), stdout);
        std::printf("\n%zu jobs on %d threads: %.1f ms wall, "
                    "%.1f ms of work, store: %llu hits / %llu misses\n",
                    graph.size(), executor.threadCount(), wallMs,
                    graph.totalWorkMs(),
                    (unsigned long long)store.hits(),
                    (unsigned long long)store.misses());
    }

    // One merged view feeds --stats, --metrics, or both. The
    // registry holds only *committed* work: a job that failed under
    // --keep-going dropped its metric transaction whole, so these
    // tables never show partially-merged counters.
    support::metrics::Snapshot snap =
        support::metrics::Registry::global().snapshot();

    if (opt.stats) {
        Table t("Cache-sweep replay throughput");
        t.setHeader({"Characterization", "Line accesses", "Replay (s)",
                     "Maccess/s"});
        uint64_t totalAccesses = 0;
        double totalSeconds = 0.0;
        const auto *sweepAcc =
            snap.find("cachesim.sweep.line_accesses");
        size_t sweeps = sweepAcc ? sweepAcc->values.size() : 0;
        if (sweepAcc) {
            // Registry labels are sorted, so the table order is
            // deterministic (the old telemetry-vector rendering
            // followed completion order).
            for (const auto &[key, accesses] : sweepAcc->values) {
                double seconds =
                    double(snap.value("cachesim.sweep.wall_us",
                                      key)) /
                    1e6;
                double rate = seconds > 0.0
                                  ? double(accesses) / seconds / 1e6
                                  : 0.0;
                t.addRow({key, std::to_string(accesses),
                          Table::fmt(seconds, 3),
                          Table::fmt(rate, 1)});
                totalAccesses += accesses;
                totalSeconds += seconds;
            }
        }
        std::fputs(t.render().c_str(), stdout);
        if (sweeps == 0)
            std::printf("no sweeps replayed this run (all "
                        "characterizations came from the store)\n");
        else
            std::printf("%llu line accesses in %.3f s replay: "
                        "%.1f Maccess/s across all sizes\n",
                        (unsigned long long)totalAccesses, totalSeconds,
                        totalSeconds > 0.0 ? double(totalAccesses) /
                                                 totalSeconds / 1e6
                                           : 0.0);
        Table g("GPU timing-simulation telemetry");
        g.setHeader({"Simulation", "Cycles", "Sim (s)", "Mcycle/s"});
        uint64_t totalCycles = 0;
        double totalSimSeconds = 0.0;
        const auto *simCycles = snap.find("gpusim.sim.cycles");
        size_t simsRun = simCycles ? simCycles->values.size() : 0;
        if (simCycles) {
            for (const auto &[key, cycles] : simCycles->values) {
                // The key's config component is the full
                // fingerprint; compress it to a short digest so the
                // table stays readable while distinct configs stay
                // distinguishable.
                std::string label = key;
                size_t cfgAt = label.find('/');
                cfgAt = cfgAt == std::string::npos
                            ? std::string::npos
                            : label.find('/', cfgAt + 1);
                cfgAt = cfgAt == std::string::npos
                            ? std::string::npos
                            : label.find('/', cfgAt + 1);
                if (cfgAt != std::string::npos) {
                    support::Fnv1a h;
                    h.field(std::string_view(label).substr(cfgAt + 1));
                    char tag[16];
                    std::snprintf(tag, sizeof(tag), "cfg=%08llx",
                                  (unsigned long long)(h.digest() &
                                                       0xffffffffu));
                    label = label.substr(0, cfgAt + 1) + tag;
                }
                double seconds =
                    double(snap.value("gpusim.sim.wall_us", key)) /
                    1e6;
                double rate = seconds > 0.0
                                  ? double(cycles) / seconds / 1e6
                                  : 0.0;
                g.addRow({label, std::to_string(cycles),
                          Table::fmt(seconds, 3),
                          Table::fmt(rate, 1)});
                totalCycles += cycles;
                totalSimSeconds += seconds;
            }
        }
        std::fputs(g.render().c_str(), stdout);
        std::printf("%zu sims run / %llu store-served: %llu cycles "
                    "simulated in %.3f s (%.1f Mcycle/s)\n",
                    simsRun,
                    (unsigned long long)snap.value(
                        "gpusim.store_served"),
                    (unsigned long long)totalCycles, totalSimSeconds,
                    totalSimSeconds > 0.0
                        ? double(totalCycles) / totalSimSeconds / 1e6
                        : 0.0);
        std::printf("parallel timing engine: %llu parallel runs / "
                    "%llu epochs / %llu deferred replays / "
                    "%llu CTA pauses\n",
                    (unsigned long long)snap.value("gpusim.epoch.runs"),
                    (unsigned long long)snap.value(
                        "gpusim.epoch.count"),
                    (unsigned long long)snap.value(
                        "gpusim.epoch.deferred_replays"),
                    (unsigned long long)snap.value(
                        "gpusim.epoch.cta_pauses"));
        if (uint64_t over = snap.value("gpusim.oversubscribed_cta"))
            std::printf("WARNING: %llu CTA placement(s) exceeded "
                        "standalone SM capacity (admitted by the "
                        "make-progress hatch; set RODINIA_STRICT=1 "
                        "to fail fast)\n",
                        (unsigned long long)over);
        std::printf("result store: %llu hits / %llu misses / "
                    "%llu publish failures / %llu orphaned tmp "
                    "collected\n",
                    (unsigned long long)snap.value("store.hits"),
                    (unsigned long long)snap.value("store.misses"),
                    (unsigned long long)snap.value(
                        "store.publish_failures"),
                    (unsigned long long)snap.value(
                        "store.tmp_collected"));
        // All-zero tables are ambiguous: they read the same whether
        // the run was free (everything store-served) or never got
        // anywhere. When no work was recorded *and* the store served
        // nothing, say so — the likely causes are an early exit or
        // every job failing (a failed job's metric transaction is
        // dropped whole, see --keep-going).
        if (sweeps == 0 && simsRun == 0 &&
            snap.value("store.hits") == 0 &&
            snap.value("gpusim.store_served") == 0 &&
            snap.value("figures.built") == 0)
            std::printf(
                "hint: nothing was recorded this run — it exited "
                "before any job completed, or every job failed "
                "(failed jobs drop their metric transactions "
                "whole). See the failure report above.\n");
    }

    bool sidecarOk = true;
    if (!opt.metricsOut.empty()) {
        std::FILE *f = std::fopen(opt.metricsOut.c_str(), "wb");
        if (f) {
            std::string json = snap.renderJson();
            sidecarOk = std::fwrite(json.data(), 1, json.size(), f) ==
                            json.size() &&
                        sidecarOk;
            sidecarOk = std::fclose(f) == 0 && sidecarOk;
        } else {
            sidecarOk = false;
        }
        if (!sidecarOk)
            std::fprintf(stderr, "experiments: cannot write %s\n",
                         opt.metricsOut.c_str());
    }
    if (!opt.traceOut.empty()) {
        driver::TraceCollector::install(nullptr);
        if (!trace.writeFile(opt.traceOut)) {
            std::fprintf(stderr, "experiments: cannot write %s\n",
                         opt.traceOut.c_str());
            sidecarOk = false;
        }
    }

    if (!allOk) {
        auto failures = driver::collectFailures(graph);
        size_t failed = 0;
        size_t skipped = 0;
        for (const auto &f : failures) {
            if (f.cls == driver::ErrorClass::Skipped)
                ++skipped;
            else
                ++failed;
            std::fprintf(stderr, "FAILED: %s\n", f.format().c_str());
        }
        std::fprintf(stderr,
                     "experiments: %zu job(s) failed, %zu skipped%s\n",
                     failed, skipped,
                     opt.keepGoing
                         ? "; completable figures were emitted"
                         : "; figure output suppressed (use "
                           "--keep-going for partial results)");
        return 1;
    }
    return 0;
}
