/**
 * @file
 * `experimentd` — the long-lived experiment daemon.
 *
 * Serves figure, simulation, and stats requests from many concurrent
 * clients over a Unix-domain socket (see src/service/), sharing one
 * warm driver::Context, one ResultStore, and one Executor across all
 * of them. Where `experiments` pays process startup and a context
 * rebuild per batch run, a warm daemon serves every memoized result
 * at socket round-trip cost.
 *
 * Usage:
 *   experimentd --socket PATH [--cache-dir DIR] [--no-cache]
 *               [--jobs N] [--cold-workers N] [--warm-workers N]
 *               [--max-cold-queue N] [--max-warm-queue N]
 *               [--per-client N] [--max-weight N] [--tcp PORT]
 *               [--deadline MS] [--trace FILE] [--verbose]
 *
 * Runs until SIGINT/SIGTERM, then drains (queued requests fail as
 * "shutdown"), prints the per-client accounting table, and exits 0.
 */

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "driver/tracing.hh"
#include "service/server.hh"
#include "support/metrics.hh"
#include "support/table.hh"

using namespace rodinia;

namespace {

volatile std::sig_atomic_t g_stop = 0;

void
onSignal(int)
{
    g_stop = 1;
}

void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s --socket PATH [options]\n"
        "  --socket PATH      Unix-domain socket to listen on\n"
        "  --cache-dir D      result store directory (default\n"
        "                     bench_cache; RODINIA_CACHE_DIR\n"
        "                     overrides)\n"
        "  --no-cache         bypass the on-disk result store\n"
        "  --jobs N           executor worker threads (default:\n"
        "                     hardware threads)\n"
        "  --cold-workers N   cold-lane request workers (default 2)\n"
        "  --warm-workers N   warm-lane request workers (default 1)\n"
        "  --max-cold-queue N cold queue depth cap (default 64)\n"
        "  --max-warm-queue N warm queue depth cap (default 256)\n"
        "  --per-client N     per-client in-flight quota (default "
        "16)\n"
        "  --max-weight N     WFQ weight ceiling for 'hello'\n"
        "                     (default 64)\n"
        "  --tcp PORT         also listen on 127.0.0.1:PORT (0 =\n"
        "                     kernel-chosen ephemeral port, printed\n"
        "                     at startup)\n"
        "  --deadline MS      default soft deadline for requests\n"
        "                     that send none (default: none)\n"
        "  --trace FILE       write a Chrome trace_event JSON dump\n"
        "                     (service + driver spans) on shutdown\n"
        "  --verbose          log per-connection/request lines\n",
        argv0);
}

bool
parsePositive(const char *flag, const char *v, long lo, long hi,
              long &out)
{
    char *end = nullptr;
    long n = std::strtol(v, &end, 10);
    if (end == v || *end != '\0' || n < lo || n > hi) {
        std::fprintf(stderr, "%s: '%s' is not an integer in [%ld, "
                             "%ld]\n",
                     flag, v, lo, hi);
        return false;
    }
    out = n;
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    service::ServiceConfig cfg;
    if (const char *dir = std::getenv("RODINIA_CACHE_DIR");
        dir && *dir)
        cfg.cacheDir = dir;
    std::string traceOut;

    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n", arg);
                return nullptr;
            }
            return argv[++i];
        };
        long n = 0;
        if (!std::strcmp(arg, "--socket")) {
            const char *v = value();
            if (!v)
                return 2;
            cfg.socketPath = v;
        } else if (!std::strcmp(arg, "--cache-dir")) {
            const char *v = value();
            if (!v)
                return 2;
            cfg.cacheDir = v;
        } else if (!std::strcmp(arg, "--no-cache")) {
            cfg.cacheEnabled = false;
        } else if (!std::strcmp(arg, "--jobs")) {
            const char *v = value();
            if (!v || !parsePositive("--jobs", v, 1, 1024, n))
                return 2;
            int hw = int(std::thread::hardware_concurrency());
            cfg.executorThreads = int(n) > hw && hw > 0 ? hw : int(n);
        } else if (!std::strcmp(arg, "--cold-workers")) {
            const char *v = value();
            if (!v || !parsePositive("--cold-workers", v, 1, 64, n))
                return 2;
            cfg.coldWorkers = int(n);
        } else if (!std::strcmp(arg, "--warm-workers")) {
            const char *v = value();
            if (!v || !parsePositive("--warm-workers", v, 1, 64, n))
                return 2;
            cfg.warmWorkers = int(n);
        } else if (!std::strcmp(arg, "--max-cold-queue")) {
            const char *v = value();
            if (!v ||
                !parsePositive("--max-cold-queue", v, 1, 1 << 20, n))
                return 2;
            cfg.admission.maxColdQueue = size_t(n);
        } else if (!std::strcmp(arg, "--max-warm-queue")) {
            const char *v = value();
            if (!v ||
                !parsePositive("--max-warm-queue", v, 1, 1 << 20, n))
                return 2;
            cfg.admission.maxWarmQueue = size_t(n);
        } else if (!std::strcmp(arg, "--per-client")) {
            const char *v = value();
            if (!v ||
                !parsePositive("--per-client", v, 1, 1 << 20, n))
                return 2;
            cfg.admission.perClientInFlight = size_t(n);
        } else if (!std::strcmp(arg, "--max-weight")) {
            const char *v = value();
            if (!v ||
                !parsePositive("--max-weight", v, 1, 4096, n))
                return 2;
            cfg.admission.maxWeight = uint32_t(n);
        } else if (!std::strcmp(arg, "--tcp")) {
            const char *v = value();
            if (!v || !parsePositive("--tcp", v, 0, 65535, n))
                return 2;
            cfg.tcpPort = int(n);
        } else if (!std::strcmp(arg, "--deadline")) {
            const char *v = value();
            if (!v ||
                !parsePositive("--deadline", v, 1, 86400000L, n))
                return 2;
            cfg.defaultDeadlineMs = double(n);
        } else if (!std::strcmp(arg, "--trace")) {
            const char *v = value();
            if (!v)
                return 2;
            traceOut = v;
        } else if (!std::strcmp(arg, "--verbose")) {
            cfg.verbose = true;
        } else if (!std::strcmp(arg, "--help") ||
                   !std::strcmp(arg, "-h")) {
            usage(argv[0]);
            return 0;
        } else {
            std::fprintf(stderr, "unknown option '%s'\n", arg);
            usage(argv[0]);
            return 2;
        }
    }
    if (cfg.socketPath.empty()) {
        std::fprintf(stderr, "experimentd: --socket is required\n");
        usage(argv[0]);
        return 2;
    }

    driver::TraceCollector trace;
    if (!traceOut.empty())
        driver::TraceCollector::install(&trace);

    service::ExperimentService svc(cfg);
    if (!svc.start())
        return 1;
    std::fprintf(stderr, "experimentd: listening on %s\n",
                 cfg.socketPath.c_str());
    if (cfg.tcpPort >= 0)
        std::fprintf(stderr, "experimentd: tcp on 127.0.0.1:%d\n",
                     svc.tcpPort());

    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);
    while (!g_stop)
        std::this_thread::sleep_for(std::chrono::milliseconds(50));

    std::fprintf(stderr, "experimentd: shutting down\n");
    svc.stop();

    // Shutdown report: per-client accounting plus the service
    // counters from the metrics registry.
    Table t("Per-client accounting");
    t.setHeader({"Client", "Admitted", "Rej(over)", "Rej(quota)",
                 "Served", "Failed"});
    for (const auto &[client, cs] : svc.admission().snapshot())
        t.addRow({client, std::to_string(cs.admitted),
                  std::to_string(cs.rejectedOverload),
                  std::to_string(cs.rejectedQuota),
                  std::to_string(cs.served),
                  std::to_string(cs.failed)});
    std::fputs(t.render().c_str(), stdout);
    auto snap = support::metrics::Registry::global().snapshot();
    std::printf("\n%llu connection(s), %llu sims run, "
                "%llu store-served, %llu figure cache hit(s), "
                "%llu coalesced follower(s)\n",
                (unsigned long long)svc.connectionsAccepted(),
                (unsigned long long)snap.value("gpusim.sims_run"),
                (unsigned long long)snap.value("gpusim.store_served"),
                (unsigned long long)snap.value(
                    "service.figure_cache_hits"),
                (unsigned long long)snap.value(
                    "service.coalesce.followers"));

    if (!traceOut.empty()) {
        driver::TraceCollector::install(nullptr);
        if (!trace.writeFile(traceOut)) {
            std::fprintf(stderr, "experimentd: cannot write %s\n",
                         traceOut.c_str());
            return 1;
        }
    }
    return 0;
}
