/**
 * @file
 * `expload` — seeded replay load generator for experimentd.
 *
 * Spawns N client threads, each holding one connection to the
 * daemon, and replays a deterministic mix of warm figure requests
 * and cold simulation requests (cold requests carry globally-unique
 * SimConfig variants so every one forces a fresh simulation). The
 * mix, arrival pacing, and per-client request streams are all
 * derived from --seed, so a run is exactly reproducible.
 *
 * Latencies are recorded client-side into the process metrics
 * registry (expload.latency_us, labelled by lane) and the summary
 * prints p50/p90/p99 per lane straight from those histograms.
 *
 * With --golden DIR, every served figure payload is byte-compared
 * against DIR/<figure>.txt; any mismatch fails the run. The last
 * stdout line is machine-parseable ("EXPLOAD ...") for the
 * service-smoke CI lane.
 *
 * Exit status: 0 when every request was served or cleanly rejected
 * and no golden mismatch occurred; 1 otherwise. Rejections are NOT
 * failures — overload shedding is the admission controller working
 * as designed, and flood scenarios expect them.
 */

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "service/client.hh"
#include "support/metrics.hh"
#include "support/rng.hh"

using namespace rodinia;
namespace metrics = support::metrics;

namespace {

struct Options
{
    std::string socketPath;
    int clients = 2;
    int requests = 20;      //!< per client
    double warmRatio = 0.5; //!< P(figure request)
    uint64_t seed = 1;
    std::string figure = "fig1";
    std::string workload = "backprop";
    std::string scale = "tiny";
    double rate = 0.0; //!< requests/sec per client; 0 = closed loop
    double deadlineMs = 0.0;
    std::string goldenDir;
    bool printStats = false;
    std::vector<uint32_t> weights; //!< per-client WFQ weights
                                   //!< (cycled); empty = no hello
    int batch = 0;  //!< points per cold batch; 0 = single sims.
                    //!< Batch variants are SHARED across clients, so
                    //!< concurrent clients coalesce naturally.
    int tcpPort = 0; //!< >0: connect via 127.0.0.1:PORT instead
};

/** Per-thread tallies, summed after join. */
struct Tally
{
    uint64_t sent = 0;
    uint64_t served = 0;
    uint64_t rejected = 0;
    uint64_t errors = 0;
    uint64_t lost = 0;
    uint64_t goldenMismatch = 0;
    uint64_t simsServed = 0; //!< single sims + batch points
    uint64_t coalesced = 0;  //!< of simsServed, rode another request

    void
    merge(const Tally &o)
    {
        sent += o.sent;
        served += o.served;
        rejected += o.rejected;
        errors += o.errors;
        lost += o.lost;
        goldenMismatch += o.goldenMismatch;
        simsServed += o.simsServed;
        coalesced += o.coalesced;
    }
};

void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s --socket PATH [options]\n"
        "  --socket PATH    daemon socket to connect to\n"
        "  --clients N      concurrent client connections "
        "(default 2)\n"
        "  --requests M     requests per client (default 20)\n"
        "  --warm-ratio R   fraction of warm figure requests in\n"
        "                   [0, 1] (default 0.5); the rest are cold\n"
        "                   sims with unique config variants\n"
        "  --seed S         RNG seed; same seed => same traffic\n"
        "  --figure ID      figure for warm requests (default fig1)\n"
        "  --workload W     workload for cold sims (default "
        "backprop)\n"
        "  --scale S        tiny|small|full|paper for cold sims (default "
        "tiny)\n"
        "  --rate R         requests/sec per client (default: "
        "closed\n"
        "                   loop, send next on completion)\n"
        "  --deadline MS    per-request soft deadline\n"
        "  --weights W,...  per-client WFQ weights, comma list\n"
        "                   cycled over clients; each client sends\n"
        "                   'hello' before its stream\n"
        "  --batch N        cold requests become batch sweeps of N\n"
        "                   points each; variant indices are shared\n"
        "                   across clients so concurrent batches\n"
        "                   coalesce (single flight)\n"
        "  --tcp PORT       connect to 127.0.0.1:PORT instead of\n"
        "                   the Unix socket\n"
        "  --golden DIR     byte-compare figure payloads against\n"
        "                   DIR/<figure>.txt; mismatch fails the "
        "run\n"
        "  --print-stats    fetch and print the daemon /stats "
        "payload\n"
        "                   after the run\n",
        argv0);
}

/**
 * Percentile from a power-of-two-bucket histogram: the upper bound
 * of the bucket where the cumulative count crosses the rank, capped
 * at the true max. Conservative (never under-reports), which is the
 * right direction for asserting latency bounds.
 */
uint64_t
histPercentile(const metrics::HistogramData &h, double p)
{
    if (h.count == 0)
        return 0;
    uint64_t rank = uint64_t(p * double(h.count) + 0.5);
    if (rank < 1)
        rank = 1;
    if (rank > h.count)
        rank = h.count;
    uint64_t cum = 0;
    for (size_t i = 0; i < metrics::HistogramData::kBuckets; ++i) {
        cum += h.buckets[i];
        if (cum >= rank) {
            uint64_t hi =
                i == 0 ? 0 : (uint64_t(1) << i) - 1;
            return std::min(hi, h.max);
        }
    }
    return h.max;
}

/**
 * One client's deterministic request stream. Request r of client c
 * is warm iff the (c, r)-th draw of the client's private stream is
 * below warmRatio; cold requests perturb gmemLatencyCycles by a
 * globally-unique variant index so no two cold sims in a run (or
 * across clients) share a memo/store key.
 */
void
runClient(const Options &opt, int clientIdx, Tally &tally,
          const std::string &goldenText)
{
    service::ServiceClient conn;
    bool up = opt.tcpPort > 0 ? conn.connectTcp(opt.tcpPort)
                              : conn.connect(opt.socketPath);
    if (!up) {
        tally.lost += uint64_t(opt.requests);
        return;
    }
    if (!opt.weights.empty()) {
        uint32_t w =
            opt.weights[size_t(clientIdx) % opt.weights.size()];
        if (!conn.sendHello("hello", w) || !conn.await("hello").ok()) {
            tally.lost += uint64_t(opt.requests);
            return;
        }
    }
    Rng rng(opt.seed * 1000003ULL + uint64_t(clientIdx));
    using clock = std::chrono::steady_clock;
    auto interval =
        opt.rate > 0.0
            ? std::chrono::duration_cast<clock::duration>(
                  std::chrono::duration<double>(1.0 / opt.rate))
            : clock::duration::zero();
    auto nextSend = clock::now();

    for (int r = 0; r < opt.requests; ++r) {
        if (opt.rate > 0.0) {
            std::this_thread::sleep_until(nextSend);
            nextSend += interval;
        }
        bool warm = rng.uniform() < opt.warmRatio;
        std::string id = "c" + std::to_string(clientIdx) + "-r" +
                         std::to_string(r);
        auto t0 = clock::now();
        bool wrote;
        if (warm) {
            wrote = conn.sendFigure(id, opt.figure, opt.deadlineMs);
        } else if (opt.batch > 0) {
            // Batch variants depend only on (r, p), NOT the client
            // index: concurrent clients sweep the same points, which
            // is exactly the traffic single-flight coalesces.
            std::vector<std::string> sweep;
            sweep.reserve(size_t(opt.batch));
            for (int p = 0; p < opt.batch; ++p)
                sweep.push_back("{\"gmemLatencyCycles\":" +
                                std::to_string(400 + r * opt.batch +
                                               p) +
                                "}");
            wrote = conn.sendBatch(id, opt.workload, opt.scale,
                                   sweep, opt.deadlineMs);
        } else {
            int variant = clientIdx * opt.requests + r;
            std::string cfg =
                "{\"gmemLatencyCycles\":" +
                std::to_string(400 + variant) + "}";
            wrote = conn.sendSim(id, opt.workload, opt.scale, cfg,
                                 opt.deadlineMs);
        }
        if (!wrote) {
            tally.lost += 1;
            return;
        }
        tally.sent += 1;
        service::Outcome out = conn.await(id);
        auto us = uint64_t(
            std::chrono::duration_cast<std::chrono::microseconds>(
                clock::now() - t0)
                .count());
        switch (out.status) {
        case service::Outcome::Status::Served:
            tally.served += 1;
            if (!warm && opt.batch > 0) {
                for (const auto &pt : out.points) {
                    if (!pt.ok) {
                        tally.errors += 1;
                        continue;
                    }
                    tally.simsServed += 1;
                    if (pt.coalesced)
                        tally.coalesced += 1;
                }
            } else if (!warm) {
                tally.simsServed += 1;
                if (out.coalesced)
                    tally.coalesced += 1;
            }
            metrics::observeLabeled("expload.latency_us",
                                    out.lane.empty()
                                        ? (warm ? "warm" : "cold")
                                        : out.lane,
                                    us);
            if (warm && !goldenText.empty() &&
                out.payload != goldenText) {
                tally.goldenMismatch += 1;
                std::fprintf(stderr,
                             "expload: GOLDEN MISMATCH %s: got %zu "
                             "bytes, want %zu bytes\n",
                             id.c_str(), out.payload.size(),
                             goldenText.size());
            }
            break;
        case service::Outcome::Status::Rejected:
            tally.rejected += 1;
            metrics::countLabeled("expload.rejected", out.reason, 1);
            break;
        case service::Outcome::Status::Error:
            tally.errors += 1;
            std::fprintf(stderr, "expload: %s error [%s] %s\n",
                         id.c_str(), out.errorClass.c_str(),
                         out.detail.c_str());
            break;
        case service::Outcome::Status::Lost:
            tally.lost += 1;
            return; // connection is gone; stop this client
        }
    }
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n", arg);
                return nullptr;
            }
            return argv[++i];
        };
        auto number = [&](double lo, double hi, double &out) {
            const char *v = value();
            if (!v)
                return false;
            char *end = nullptr;
            double d = std::strtod(v, &end);
            if (end == v || *end != '\0' || d < lo || d > hi) {
                std::fprintf(stderr, "%s: bad value '%s'\n", arg, v);
                return false;
            }
            out = d;
            return true;
        };
        double d = 0.0;
        if (!std::strcmp(arg, "--socket")) {
            const char *v = value();
            if (!v)
                return 2;
            opt.socketPath = v;
        } else if (!std::strcmp(arg, "--clients")) {
            if (!number(1, 256, d))
                return 2;
            opt.clients = int(d);
        } else if (!std::strcmp(arg, "--requests")) {
            if (!number(1, 1e6, d))
                return 2;
            opt.requests = int(d);
        } else if (!std::strcmp(arg, "--warm-ratio")) {
            if (!number(0.0, 1.0, d))
                return 2;
            opt.warmRatio = d;
        } else if (!std::strcmp(arg, "--seed")) {
            if (!number(0, 1e18, d))
                return 2;
            opt.seed = uint64_t(d);
        } else if (!std::strcmp(arg, "--figure")) {
            const char *v = value();
            if (!v)
                return 2;
            opt.figure = v;
        } else if (!std::strcmp(arg, "--workload")) {
            const char *v = value();
            if (!v)
                return 2;
            opt.workload = v;
        } else if (!std::strcmp(arg, "--scale")) {
            const char *v = value();
            if (!v)
                return 2;
            opt.scale = v;
        } else if (!std::strcmp(arg, "--rate")) {
            if (!number(0.001, 1e6, d))
                return 2;
            opt.rate = d;
        } else if (!std::strcmp(arg, "--deadline")) {
            if (!number(1, 86400000, d))
                return 2;
            opt.deadlineMs = d;
        } else if (!std::strcmp(arg, "--weights")) {
            const char *v = value();
            if (!v)
                return 2;
            std::string s(v);
            size_t pos = 0;
            while (pos <= s.size()) {
                size_t comma = s.find(',', pos);
                std::string tok = s.substr(
                    pos, comma == std::string::npos ? std::string::npos
                                                    : comma - pos);
                char *end = nullptr;
                long w = std::strtol(tok.c_str(), &end, 10);
                if (end == tok.c_str() || *end != '\0' || w < 1 ||
                    w > 4096) {
                    std::fprintf(stderr,
                                 "--weights: bad weight '%s'\n",
                                 tok.c_str());
                    return 2;
                }
                opt.weights.push_back(uint32_t(w));
                if (comma == std::string::npos)
                    break;
                pos = comma + 1;
            }
        } else if (!std::strcmp(arg, "--batch")) {
            if (!number(1, 128, d))
                return 2;
            opt.batch = int(d);
        } else if (!std::strcmp(arg, "--tcp")) {
            if (!number(1, 65535, d))
                return 2;
            opt.tcpPort = int(d);
        } else if (!std::strcmp(arg, "--golden")) {
            const char *v = value();
            if (!v)
                return 2;
            opt.goldenDir = v;
        } else if (!std::strcmp(arg, "--print-stats")) {
            opt.printStats = true;
        } else if (!std::strcmp(arg, "--help") ||
                   !std::strcmp(arg, "-h")) {
            usage(argv[0]);
            return 0;
        } else {
            std::fprintf(stderr, "unknown option '%s'\n", arg);
            usage(argv[0]);
            return 2;
        }
    }
    if (opt.socketPath.empty() && opt.tcpPort <= 0) {
        std::fprintf(stderr,
                     "expload: --socket or --tcp is required\n");
        usage(argv[0]);
        return 2;
    }

    std::string goldenText;
    if (!opt.goldenDir.empty()) {
        std::ifstream in(opt.goldenDir + "/" + opt.figure + ".txt",
                         std::ios::binary);
        if (!in) {
            std::fprintf(stderr,
                         "expload: cannot read golden file %s/%s.txt"
                         "\n",
                         opt.goldenDir.c_str(), opt.figure.c_str());
            return 2;
        }
        std::ostringstream ss;
        ss << in.rdbuf();
        goldenText = ss.str();
    }

    std::vector<Tally> tallies(size_t(opt.clients));
    std::vector<std::thread> threads;
    auto t0 = std::chrono::steady_clock::now();
    for (int c = 0; c < opt.clients; ++c)
        threads.emplace_back(runClient, std::cref(opt), c,
                             std::ref(tallies[size_t(c)]),
                             std::cref(goldenText));
    for (auto &t : threads)
        t.join();
    auto wallMs =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - t0)
            .count();

    Tally total;
    for (const auto &t : tallies)
        total.merge(t);

    // Per-lane latency percentiles straight from the metrics
    // histograms the client threads filled in.
    auto snap = metrics::Registry::global().snapshot();
    uint64_t p50[2] = {0, 0}, p90[2] = {0, 0}, p99[2] = {0, 0};
    uint64_t laneCount[2] = {0, 0};
    const char *laneNames[2] = {"warm", "cold"};
    if (const auto *m = snap.find("expload.latency_us")) {
        for (int l = 0; l < 2; ++l) {
            auto it = m->histograms.find(laneNames[l]);
            if (it == m->histograms.end())
                continue;
            const auto &h = it->second;
            laneCount[l] = h.count;
            p50[l] = histPercentile(h, 0.50);
            p90[l] = histPercentile(h, 0.90);
            p99[l] = histPercentile(h, 0.99);
        }
    }

    std::printf("expload: %d client(s) x %d request(s), seed %llu, "
                "%lld ms\n",
                opt.clients, opt.requests,
                (unsigned long long)opt.seed, (long long)wallMs);
    for (int l = 0; l < 2; ++l)
        std::printf("  %-4s  n=%-6llu p50<=%lluus p90<=%lluus "
                    "p99<=%lluus\n",
                    laneNames[l], (unsigned long long)laneCount[l],
                    (unsigned long long)p50[l],
                    (unsigned long long)p90[l],
                    (unsigned long long)p99[l]);

    if (opt.printStats) {
        service::ServiceClient conn;
        if (conn.connect(opt.socketPath) && conn.sendStats("stats")) {
            service::Outcome out = conn.await("stats");
            if (out.ok())
                std::printf("stats: %s\n", out.payload.c_str());
        }
    }

    bool ok = total.goldenMismatch == 0 && total.errors == 0 &&
              total.lost == 0 && total.served > 0;
    // Coalesce hit rate over the sims this run actually had served
    // (batch points included), and each client's share of all served
    // requests — the observable side of WFQ weighting.
    double coalesceRate =
        total.simsServed > 0
            ? double(total.coalesced) / double(total.simsServed)
            : 0.0;
    std::string shares;
    for (size_t c = 0; c < tallies.size(); ++c) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%s%.2f", c ? "," : "",
                      total.served > 0
                          ? double(tallies[c].served) /
                                double(total.served)
                          : 0.0);
        shares += buf;
    }
    std::printf("EXPLOAD ok=%d sent=%llu served=%llu rejected=%llu "
                "errors=%llu lost=%llu golden_mismatch=%llu "
                "warm_p99_us=%llu cold_p99_us=%llu "
                "coalesce_rate=%.2f shares=%s\n",
                ok ? 1 : 0, (unsigned long long)total.sent,
                (unsigned long long)total.served,
                (unsigned long long)total.rejected,
                (unsigned long long)total.errors,
                (unsigned long long)total.lost,
                (unsigned long long)total.goldenMismatch,
                (unsigned long long)p99[0],
                (unsigned long long)p99[1], coalesceRate,
                shares.c_str());
    return ok ? 0 : 1;
}
