/**
 * @file
 * Scenario: adding your own benchmark to the suite.
 *
 * Implements a small SAXPY-with-reduction workload against the
 * public Workload interface — instrumented CPU threads plus a SIMT
 * GPU kernel — registers it, and characterizes it exactly like the
 * built-in benchmarks. This is the template for extending the suite
 * with new applications.
 */

#include <cstdio>
#include <numeric>

#include "core/characterize.hh"
#include "core/workload.hh"
#include "gpusim/simconfig.hh"
#include "support/rng.hh"

using namespace rodinia;

namespace {

const core::WorkloadInfo kInfo = {
    "saxpyred",
    "SaxpyReduce",
    core::Suite::Rodinia,
    "Dense Linear Algebra",
    "Example",
    "65536 elements",
    "y = a*x + y followed by a block-level sum reduction",
    "65536 elements",
};

class SaxpyReduce : public core::Workload
{
  public:
    const core::WorkloadInfo &info() const override { return kInfo; }

    void
    runCpu(trace::TraceSession &session, core::Scale) override
    {
        const int n = 65536;
        std::vector<float> x(n), y(n);
        Rng rng(1);
        for (int i = 0; i < n; ++i) {
            x[i] = float(rng.uniform());
            y[i] = float(rng.uniform());
        }
        const int nt = session.numThreads();
        std::vector<double> partial(nt, 0.0);

        session.run([&](trace::ThreadCtx &ctx) {
            const int t = ctx.tid();
            double acc = 0.0;
            // Block-cyclic distribution, like schedule(static, 4).
            for (int i = t * 4; i < n; i += nt * 4) {
                ctx.load(&x[i], 16);
                ctx.load(&y[i], 16);
                ctx.fp(4);
                for (int u = 0; u < 4; ++u) {
                    y[i + u] = 2.5f * x[i + u] + y[i + u];
                    acc += y[i + u];
                }
                ctx.store(&y[i], 16);
            }
            partial[t] = acc;
            ctx.barrier();
            if (t == 0) {
                double total = 0.0;
                for (int w = 0; w < nt; ++w) {
                    ctx.load(&partial[w], 8);
                    ctx.fp(1);
                    total += partial[w];
                }
                sum = total;
            }
        });
        digest = uint64_t(sum);
    }

    int gpuVersions() const override { return 1; }

    gpusim::LaunchSequence
    runGpu(core::Scale, int) override
    {
        const int n = 65536;
        std::vector<float> x(n), y(n);
        std::vector<float> blockSums(n / 256, 0.0f);
        Rng rng(1);
        for (int i = 0; i < n; ++i) {
            x[i] = float(rng.uniform());
            y[i] = float(rng.uniform());
        }

        gpusim::LaunchConfig launch;
        launch.blockDim = 256;
        launch.gridDim = n / 256;
        auto kernel = [&](gpusim::KernelCtx &ctx) {
            auto sh = ctx.shared<float>(256);
            int i = ctx.globalId();
            float v = 2.5f * ctx.ldg(&x[i]) + ctx.ldg(&y[i]);
            ctx.fp(2);
            ctx.stg(&y[i], v);
            sh.put(ctx, ctx.tid(), v);
            ctx.sync();
            for (int stride = 128; stride > 0; stride /= 2) {
                gpusim::LoopIter li(ctx, uint32_t(stride));
                if (ctx.branch(ctx.tid() < stride)) {
                    float a = sh.get(ctx, ctx.tid());
                    float b = sh.get(ctx, ctx.tid() + stride);
                    ctx.fp(1);
                    sh.put(ctx, ctx.tid(), a + b);
                }
                ctx.sync();
            }
            if (ctx.branch(ctx.tid() == 0))
                ctx.stg(&blockSums[ctx.blockIdx()], sh.get(ctx, 0));
        };

        gpusim::LaunchSequence seq;
        seq.add(gpusim::recordKernel(launch, kernel));
        sum = std::accumulate(blockSums.begin(), blockSums.end(), 0.0);
        digest = uint64_t(sum);
        return seq;
    }

    uint64_t checksum() const override { return digest; }
    double result() const { return sum; }

  private:
    double sum = 0.0;
    uint64_t digest = 0;
};

} // namespace

int
main()
{
    core::registerAllWorkloads();
    core::Registry::instance().add(
        kInfo, [] { return std::make_unique<SaxpyReduce>(); });

    auto w = core::Registry::instance().create("saxpyred");
    auto cpu = core::characterizeCpu(*w, core::Scale::Small);
    std::printf("CPU:  %llu instructions, miss rate @128kB = %.4f, "
                "sum checksum %llu\n",
                (unsigned long long)cpu.mix.total(),
                cpu.sweep.front().missRate(),
                (unsigned long long)cpu.checksum);

    auto gpu = core::characterizeGpu(
        *w, core::Scale::Small, gpusim::SimConfig::gpgpusimDefault());
    std::printf("GPU:  IPC %.1f over %llu cycles, avg occupancy %.1f, "
                "sum checksum %llu\n",
                gpu.timing.ipc(), (unsigned long long)gpu.timing.cycles,
                gpu.trace.avgWarpOccupancy(),
                (unsigned long long)w->checksum());
    std::printf("\nCPU and GPU computed %s result.\n",
                cpu.checksum == w->checksum() ? "the SAME"
                                              : "a DIFFERENT");
    return 0;
}
