/**
 * @file
 * Command-line driver over the whole library — the fifth example and
 * the tool a downstream user scripts against.
 *
 *   suite_runner list
 *   suite_runner cpu <workload> [tiny|small|full|paper] [threads]
 *   suite_runner gpu <workload> [tiny|small|full|paper] [version]
 *   suite_runner sweep <workload>          # cache-size sweep table
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "core/characterize.hh"
#include "core/workload.hh"
#include "gpusim/simconfig.hh"
#include "support/table.hh"

using namespace rodinia;

namespace {

core::Scale
scaleOf(const char *s)
{
    if (!s || !std::strcmp(s, "full"))
        return core::Scale::Full;
    if (!std::strcmp(s, "tiny"))
        return core::Scale::Tiny;
    if (!std::strcmp(s, "small"))
        return core::Scale::Small;
    if (!std::strcmp(s, "paper"))
        return core::Scale::Paper;
    std::fprintf(stderr, "unknown scale '%s' (tiny|small|full|paper)\n",
                 s);
    std::exit(1);
}

int
cmdList()
{
    Table t("Registered workloads");
    t.setHeader({"name", "suite", "dwarf", "domain", "GPU"});
    for (const auto &info : core::Registry::instance().all()) {
        auto w = core::Registry::instance().create(info.name);
        t.addRow({info.name, core::suiteTag(info.suite), info.dwarf,
                  info.domain,
                  w->gpuVersions() ? std::to_string(w->gpuVersions()) +
                                         " version(s)"
                                   : "-"});
    }
    t.print();
    return 0;
}

int
cmdCpu(const char *name, core::Scale scale, int threads)
{
    auto w = core::Registry::instance().create(name);
    auto c = core::characterizeCpu(*w, scale, threads);
    auto f = c.instrMixFeatures();
    std::printf("%s: %llu instructions on %d threads\n", name,
                (unsigned long long)c.mix.total(), threads);
    std::printf("  mix: int %.1f%%  fp %.1f%%  branch %.1f%%  "
                "load %.1f%%  store %.1f%%\n",
                f[0] * 100, f[1] * 100, f[2] * 100, f[3] * 100,
                f[4] * 100);
    std::printf("  footprints: %llu data pages, %llu instr blocks, "
                "checksum %016llx\n",
                (unsigned long long)c.dataPages,
                (unsigned long long)c.instructionBlocks,
                (unsigned long long)c.checksum);
    return 0;
}

int
cmdGpu(const char *name, core::Scale scale, int version)
{
    auto w = core::Registry::instance().create(name);
    if (w->gpuVersions() < 1) {
        std::fprintf(stderr, "'%s' is CPU-only\n", name);
        return 1;
    }
    if (version <= 0)
        version = w->gpuVersions();
    auto g = core::characterizeGpu(
        *w, scale, gpusim::SimConfig::gpgpusimDefault(), version);
    std::printf("%s v%d: IPC %.1f, %llu cycles, BW util %.1f%%, "
                "avg occupancy %.1f/32\n",
                name, version, g.timing.ipc(),
                (unsigned long long)g.timing.cycles,
                g.timing.bwUtilization() * 100,
                g.trace.avgWarpOccupancy());
    return 0;
}

int
cmdSweep(const char *name, core::Scale scale)
{
    auto w = core::Registry::instance().create(name);
    auto c = core::characterizeCpu(*w, scale);
    Table t("Cache sweep for " + std::string(name));
    t.setHeader({"size", "miss rate", "shared lines", "shared accs"});
    for (size_t i = 0; i < c.cacheSizes.size(); ++i)
        t.addRow({std::to_string(c.cacheSizes[i] / 1024) + " kB",
                  Table::fmt(c.sweep[i].missRate(), 4),
                  Table::pct(c.sweep[i].sharedLineFraction()),
                  Table::pct(c.sweep[i].sharedAccessFraction())});
    t.print();
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    core::registerAllWorkloads();
    if (argc < 2) {
        std::fprintf(stderr,
                     "usage: %s list | cpu <w> [scale] [threads] | "
                     "gpu <w> [scale] [version] | sweep <w> [scale]\n",
                     argv[0]);
        return 1;
    }
    std::string cmd = argv[1];
    if (cmd == "list")
        return cmdList();
    if (argc < 3) {
        std::fprintf(stderr, "%s needs a workload name\n", cmd.c_str());
        return 1;
    }
    if (!core::Registry::instance().has(argv[2])) {
        std::fprintf(stderr, "unknown workload '%s'\n", argv[2]);
        return 1;
    }
    core::Scale scale = scaleOf(argc > 3 ? argv[3] : nullptr);
    if (cmd == "cpu")
        return cmdCpu(argv[2], scale, argc > 4 ? std::atoi(argv[4]) : 8);
    if (cmd == "gpu")
        return cmdGpu(argv[2], scale, argc > 4 ? std::atoi(argv[4]) : 0);
    if (cmd == "sweep")
        return cmdSweep(argv[2], scale);
    std::fprintf(stderr, "unknown command '%s'\n", cmd.c_str());
    return 1;
}
