/**
 * @file
 * Scenario: "which benchmarks should I pick for my CMP study?"
 *
 * Characterizes a user-chosen subset of Rodinia and Parsec
 * workloads, runs PCA over the full feature set, clusters them, and
 * reports redundancy: workloads in the same cluster stress a machine
 * similarly, so one representative per cluster suffices — the
 * paper's Section V use case, as a library call.
 *
 *   ./suite_comparison [k]      (k = number of clusters, default 4)
 */

#include <cstdio>
#include <cstdlib>

#include "core/characterize.hh"
#include "core/workload.hh"
#include "stats/cluster.hh"
#include "stats/pca.hh"

using namespace rodinia;

int
main(int argc, char **argv)
{
    core::registerAllWorkloads();
    int k = argc > 1 ? std::atoi(argv[1]) : 4;

    // A study-sized subset: a few from each suite.
    const std::vector<std::string> picks = {
        "kmeans", "bfs",      "hotspot",      "srad",
        "mummer", "dedup",    "blackscholes", "fluidanimate",
        "canneal", "raytrace",
    };

    std::vector<std::vector<double>> rows;
    std::vector<std::string> labels;
    for (const auto &name : picks) {
        auto w = core::Registry::instance().create(name);
        auto c = core::characterizeCpu(*w, core::Scale::Small);
        rows.push_back(c.allFeatures());
        labels.push_back(name + core::suiteTag(c.suite));
        std::printf("characterized %-18s (%llu mem events)\n",
                    labels.back().c_str(),
                    (unsigned long long)c.memEvents);
    }

    auto pca = stats::runPca(stats::Matrix::fromRows(rows));
    size_t keep = pca.componentsForVariance(0.9);
    std::printf("\nPCA: %zu components cover 90%% of variance\n\n",
                keep);

    auto lk = stats::hierarchicalCluster(stats::pcaProject(pca, keep));
    std::printf("%s\n", stats::renderDendrogram(lk, labels).c_str());

    if (k < 1 || k > int(picks.size()))
        k = 4;
    auto cut = lk.cut(k);
    std::printf("Pick one workload per cluster (k = %d):\n", k);
    for (int cl = 0; cl < k; ++cl) {
        std::printf("  cluster %d:", cl);
        for (size_t i = 0; i < labels.size(); ++i)
            if (cut[i] == cl)
                std::printf(" %s", labels[i].c_str());
        std::printf("\n");
    }
    return 0;
}
