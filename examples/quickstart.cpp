/**
 * @file
 * Quickstart: characterize one benchmark on both targets.
 *
 * Runs Kmeans through the whole pipeline: the instrumented
 * multithreaded CPU implementation (instruction mix, cache behavior,
 * footprints) and the SIMT GPU simulation (IPC, occupancy, memory
 * mix) — the minimal end-to-end use of the library.
 *
 *   ./quickstart [workload-name]
 */

#include <cstdio>

#include "core/characterize.hh"
#include "core/workload.hh"
#include "gpusim/simconfig.hh"
#include "support/table.hh"

using namespace rodinia;

int
main(int argc, char **argv)
{
    core::registerAllWorkloads();
    std::string name = argc > 1 ? argv[1] : "kmeans";
    if (!core::Registry::instance().has(name)) {
        std::fprintf(stderr, "unknown workload '%s'; try one of:\n",
                     name.c_str());
        for (const auto &info : core::Registry::instance().all())
            std::fprintf(stderr, "  %s\n", info.name.c_str());
        return 1;
    }

    auto workload = core::Registry::instance().create(name);
    const auto &info = workload->info();
    std::printf("== %s — %s (%s dwarf, %s)\n\n", info.name.c_str(),
                info.description.c_str(), info.dwarf.c_str(),
                info.domain.c_str());

    // --- CPU side: the Pin-style characterization. -----------------
    auto cpu = core::characterizeCpu(*workload, core::Scale::Small);
    auto mixf = cpu.instrMixFeatures();
    Table mix("CPU instruction mix (8 threads, Small scale)");
    mix.setHeader({"int", "fp", "branch", "load", "store"});
    mix.addRow({Table::pct(mixf[0]), Table::pct(mixf[1]),
                Table::pct(mixf[2]), Table::pct(mixf[3]),
                Table::pct(mixf[4])});
    mix.print();

    Table ws("Working set / sharing");
    ws.setHeader({"cache", "miss rate", "shared lines", "shared acc"});
    for (size_t i = 0; i < cpu.cacheSizes.size(); i += 2) {
        ws.addRow({std::to_string(cpu.cacheSizes[i] / 1024) + " kB",
                   Table::fmt(cpu.sweep[i].missRate(), 4),
                   Table::pct(cpu.sweep[i].sharedLineFraction()),
                   Table::pct(cpu.sweep[i].sharedAccessFraction())});
    }
    ws.print();
    std::printf("data footprint: %llu pages (4 kB), "
                "instruction footprint: %llu blocks (64 B)\n\n",
                (unsigned long long)cpu.dataPages,
                (unsigned long long)cpu.instructionBlocks);

    // --- GPU side: the GPGPU-Sim-style characterization. ------------
    if (workload->gpuVersions() > 0) {
        auto gpu = core::characterizeGpu(
            *workload, core::Scale::Small,
            gpusim::SimConfig::gpgpusimDefault(),
            workload->gpuVersions());
        std::printf("GPU (28-SM GPGPU-Sim-like config):\n");
        std::printf("  IPC                 %.1f\n", gpu.timing.ipc());
        std::printf("  cycles              %llu\n",
                    (unsigned long long)gpu.timing.cycles);
        std::printf("  DRAM bandwidth util %.1f%%\n",
                    gpu.timing.bwUtilization() * 100.0);
        std::printf("  avg warp occupancy  %.1f / 32\n",
                    gpu.trace.avgWarpOccupancy());
        auto memf = gpu.trace.memOpFractions();
        std::printf("  mem mix: shared %.0f%%  tex %.0f%%  const %.0f%%"
                    "  global %.0f%%\n",
                    memf[size_t(gpusim::Space::Shared)] * 100,
                    memf[size_t(gpusim::Space::Tex)] * 100,
                    memf[size_t(gpusim::Space::Const)] * 100,
                    (memf[size_t(gpusim::Space::Global)] +
                     memf[size_t(gpusim::Space::Local)]) *
                        100);
    } else {
        std::printf("(CPU-only workload — no GPU implementation)\n");
    }
    return 0;
}
