/**
 * @file
 * Scenario: "how should I size my accelerator?"
 *
 * An architect's design-space sweep: one recorded kernel is replayed
 * under a grid of shader counts and memory-channel counts, printing
 * the IPC surface — the kind of study Section III-E motivates,
 * without re-running the workload itself (record once, simulate
 * many).
 *
 *   ./gpu_design_space [workload-name]
 */

#include <cstdio>

#include "core/workload.hh"
#include "gpusim/timing.hh"
#include "support/table.hh"

using namespace rodinia;

int
main(int argc, char **argv)
{
    core::registerAllWorkloads();
    std::string name = argc > 1 ? argv[1] : "srad";
    auto workload = core::Registry::instance().create(name);
    if (workload->gpuVersions() < 1) {
        std::fprintf(stderr, "'%s' has no GPU implementation\n",
                     name.c_str());
        return 1;
    }

    std::printf("recording %s once...\n", name.c_str());
    auto seq = workload->runGpu(core::Scale::Small,
                                workload->gpuVersions());

    Table t("IPC surface for " + name +
            " (rows: SMs, cols: memory channels)");
    t.setHeader({"SMs \\ channels", "2", "4", "8", "16"});
    for (int sms : {4, 8, 16, 28, 56}) {
        std::vector<std::string> row{std::to_string(sms)};
        for (int ch : {2, 4, 8, 16}) {
            gpusim::SimConfig cfg = gpusim::SimConfig::gpgpusimDefault();
            cfg.numSms = sms;
            cfg.numChannels = ch;
            auto st = gpusim::TimingSim(cfg).simulate(seq);
            row.push_back(Table::fmt(st.ipc(), 1));
        }
        t.addRow(row);
    }
    t.print();

    std::printf("\nReading the surface: movement along a row that "
                "flattens means the kernel\nis compute/latency bound; "
                "movement down a column that flattens means the\n"
                "kernel ran out of thread blocks or saturated "
                "bandwidth.\n");
    return 0;
}
